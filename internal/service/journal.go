package service

// Sweep durability: the manifest/record journaling half lives here, and
// so does startup recovery — the piece that closes the coordinator SPOF.
// The result store already survives restarts; this file makes the sweeps
// themselves survive too, by persisting each sweep's identity and
// terminal outcomes into a store-hosted journal (store.SweepJournal) and
// re-adopting incomplete sweeps at startup through the normal runner
// seam, so recovery behaves identically whether scenarios compute on the
// local pool or fan out to cluster workers.

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/json"
	"fmt"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/store"
)

// newSweepID mints a collision-free sweep id: "sw-" + the submission
// instant in hex nanoseconds + a random suffix. Unlike the old
// process-local counter, ids from different processes (or the same
// store directory across restarts) cannot collide — which the durable
// journal requires, since a recovered sweep keeps its id. The alphabet
// stays within what httpmw.RouteLabel normalizes and
// store.ValidSweepID accepts.
func newSweepID() string {
	var b [4]byte
	_, _ = cryptorand.Read(b[:])
	return fmt.Sprintf("sw-%x-%x", time.Now().UnixNano(), b)
}

// journalSweep durably writes the sweep's manifest, arming per-scenario
// record appends. No-ops without a store; degrades (log + journal_error
// metric) when the sweep cannot be journaled — scenarios that cannot
// cross a process boundary (replay datasets, telemetry writers) or a
// failing disk never fail a submission that would have worked in memory.
func (s *Service) journalSweep(sw *Sweep, opts SweepOptions) {
	if s.store == nil || opts.Ephemeral {
		return
	}
	reqs := make([]ScenarioRequest, len(sw.scenarios))
	for i, sc := range sw.scenarios {
		r, err := ScenarioRequestFrom(sc)
		if err != nil {
			if s.logf != nil {
				s.logf("service: sweep %s not journaled (scenario %d: %v)", sw.id, i, err)
			}
			return
		}
		reqs[i] = r
	}
	specJSON, err := json.Marshal(sw.spec)
	if err == nil {
		var scenJSON []byte
		if scenJSON, err = json.Marshal(reqs); err == nil {
			var j *store.SweepJournal
			j, err = s.store.CreateJournal(&store.SweepManifest{
				ID:              sw.id,
				Key:             sw.key,
				Name:            sw.name,
				SpecHash:        sw.specHash,
				ScenarioHashes:  sw.hashes,
				SpecJSON:        specJSON,
				ScenariosJSON:   scenJSON,
				MaxConcurrent:   opts.MaxConcurrent,
				TimeoutSec:      sw.timeout.Seconds(),
				MaxAttempts:     sw.maxAttempts,
				CreatedUnixNano: sw.createdAt.UnixNano(),
			})
			if err == nil {
				sw.journal = j
				return
			}
		}
	}
	if s.logf != nil {
		s.logf("service: sweep %s journal create: %v (continuing in-memory)", sw.id, err)
	}
}

// appendJournal records one terminal scenario into the sweep's journal.
// Cancellations are skipped on purpose: a cancelled scenario is work the
// sweep still owes after a restart, which is exactly what re-adoption
// recomputes.
func (sw *Sweep) appendJournal(st ScenarioStatus) {
	j := sw.journal
	if j == nil {
		return
	}
	switch st.State {
	case StateDone, StateCached, StateFailed:
	default:
		return
	}
	err := j.Append(store.ScenarioRecord{
		Index:    st.Index,
		Hash:     st.Hash,
		State:    string(st.State),
		Error:    st.Error,
		Attempts: st.Attempts,
		WallSec:  st.WallSec,
		CacheHit: st.CacheHit,
	})
	if err != nil && sw.svc.logf != nil {
		sw.svc.logf("service: sweep %s journal append: %v (continuing in-memory)", sw.id, err)
	}
}

// DetachJournal severs the sweep from its journal without sealing it:
// on disk the journal looks exactly as a kill -9 at this instant would
// have left it. Crash-recovery tests use this to fabricate a mid-sweep
// process death without actually killing the test process (an in-process
// teardown would otherwise journal a tidy cancelled disposition).
func (sw *Sweep) DetachJournal() {
	if j := sw.journal; j != nil {
		j.Detach()
	}
}

// Recovered reports whether this sweep was reconstructed from the
// journal after a restart.
func (sw *Sweep) Recovered() bool { return sw.recovered }

// RecoverStats summarizes one startup recovery pass.
type RecoverStats struct {
	// Adopted counts incomplete sweeps re-adopted and resumed; Finished
	// counts completed sweeps re-registered for status/results serving.
	Adopted  int `json:"adopted"`
	Finished int `json:"finished"`
	// Terminal counts scenarios restored from journal records (plus the
	// result store) without recompute; Requeued counts scenarios
	// re-enqueued through the runner seam.
	Terminal int `json:"terminal"`
	Requeued int `json:"requeued"`
}

// Recover scans the store's sweep journals and re-adopts what the
// previous process left behind: finished sweeps come back as queryable
// status (GET /api/sweeps/{id} keeps working across restarts, results
// lazily re-read from the store), incomplete sweeps are resumed —
// journal-recorded scenarios whose results the store still holds are
// marked terminal without recompute, and the remainder re-enters the
// normal dispatch path, identically under a local pool or a cluster
// runner. Idempotency keys are rebound, so resubmission against a
// recovered sweep dedupes exactly as it would have before the crash.
//
// Call once at startup, before serving traffic. Without a store this is
// a no-op.
func (s *Service) Recover() (RecoverStats, error) {
	var stats RecoverStats
	if s.store == nil {
		return stats, nil
	}
	entries, err := s.store.ScanJournals()
	if err != nil {
		return stats, err
	}
	for i := range entries {
		e := &entries[i]
		s.mu.Lock()
		_, exists := s.sweeps[e.Manifest.ID]
		s.mu.Unlock()
		if exists {
			continue
		}
		if e.EndDisposition != "" {
			s.adoptFinished(e)
			stats.Finished++
			continue
		}
		requeued, terminal, err := s.adoptIncomplete(e)
		if err != nil {
			if s.logf != nil {
				s.logf("service: recover %s: %v (journal left in place)", e.Manifest.ID, err)
			}
			continue
		}
		stats.Adopted++
		stats.Requeued += requeued
		stats.Terminal += terminal
	}
	return stats, nil
}

// recoveredShell builds the common skeleton of a journal-reconstructed
// sweep: identity from the manifest, all bookkeeping slices sized, every
// scenario initialized to the given state.
func (s *Service) recoveredShell(m *store.SweepManifest, initial ScenarioState) *Sweep {
	n := len(m.ScenarioHashes)
	ctx, cancel := context.WithCancel(context.Background())
	sw := &Sweep{
		id:          m.ID,
		name:        m.Name,
		key:         m.Key,
		recovered:   true,
		specHash:    m.SpecHash,
		createdAt:   time.Unix(0, m.CreatedUnixNano),
		hashes:      append([]string(nil), m.ScenarioHashes...),
		spans:       make([]spanState, n),
		svc:         s,
		timeout:     time.Duration(m.TimeoutSec * float64(time.Second)),
		maxAttempts: m.MaxAttempts,
		ctx:         ctx,
		cancel:      cancel,
		statuses:    make([]ScenarioStatus, n),
		results:     make([]*core.Result, n),
		notify:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	if sw.timeout <= 0 {
		sw.timeout = s.scenarioTimeout
	}
	if sw.maxAttempts <= 0 {
		sw.maxAttempts = s.maxAttempts
	}
	// Scenario names are display-only; pull them from the wire forms
	// without requiring a decodable spec.
	var reqs []ScenarioRequest
	_ = json.Unmarshal(m.ScenariosJSON, &reqs)
	for i := range sw.statuses {
		name := ""
		if i < len(reqs) {
			if name = reqs[i].Name; name == "" {
				name = reqs[i].Workload
			}
		}
		sw.statuses[i] = ScenarioStatus{Index: i, Name: name, Hash: m.ScenarioHashes[i], State: initial}
	}
	return sw
}

// applyRecord restores one journal record onto the shell's status slot.
func applyRecord(sw *Sweep, rec store.ScenarioRecord) {
	st := &sw.statuses[rec.Index]
	st.State = ScenarioState(rec.State)
	st.Error = rec.Error
	st.Attempts = rec.Attempts
	st.WallSec = rec.WallSec
	st.CacheHit = rec.CacheHit
}

// registerRecovered publishes a reconstructed sweep into the registry.
func (s *Service) registerRecovered(sw *Sweep) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.sweeps[sw.id]; taken {
		return fmt.Errorf("service: sweep id %s already registered", sw.id)
	}
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	if sw.key != "" {
		if _, bound := s.keys[sw.key]; !bound {
			s.keys[sw.key] = sw.id
		}
	}
	s.pruneLocked()
	return nil
}

// adoptFinished re-registers a completed sweep for status and result
// serving — no compile, no admission, no goroutines; scenarios without a
// record were cancelled (cancellations are never journaled).
func (s *Service) adoptFinished(e *store.JournalEntry) {
	sw := s.recoveredShell(&e.Manifest, StateCancelled)
	for _, rec := range e.Records {
		if rec.Index < 0 || rec.Index >= len(sw.statuses) {
			continue
		}
		applyRecord(sw, rec)
	}
	sw.cancel()
	close(sw.done)
	if err := s.registerRecovered(sw); err != nil {
		if s.logf != nil {
			s.logf("service: recover %s: %v", sw.id, err)
		}
		return
	}
	s.recFinished.Inc()
}

// adoptIncomplete resumes a sweep the previous process died holding:
// verify the manifest's hashes against a fresh compile (a journal from a
// different code version must recompute, not serve stale keys), restore
// journal-terminal scenarios whose results the store still holds, and
// re-enqueue the rest through run() — the same dispatch loop a live
// submission uses, runner seam and all.
func (s *Service) adoptIncomplete(e *store.JournalEntry) (requeued, terminal int, err error) {
	m := &e.Manifest
	var spec config.SystemSpec
	if err := json.Unmarshal(m.SpecJSON, &spec); err != nil {
		return 0, 0, fmt.Errorf("manifest spec: %w", err)
	}
	var reqs []ScenarioRequest
	if err := json.Unmarshal(m.ScenariosJSON, &reqs); err != nil {
		return 0, 0, fmt.Errorf("manifest scenarios: %w", err)
	}
	if len(reqs) != len(m.ScenarioHashes) {
		return 0, 0, fmt.Errorf("manifest carries %d scenarios but %d hashes", len(reqs), len(m.ScenarioHashes))
	}
	scenarios := make([]core.Scenario, len(reqs))
	for i := range reqs {
		scenarios[i] = reqs[i].Scenario()
	}
	compileStart := time.Now()
	compiled, err := s.compiledFor(spec)
	if err != nil {
		return 0, 0, fmt.Errorf("spec recompile: %w", err)
	}

	sw := s.recoveredShell(m, StateQueued)
	sw.spec = spec
	sw.compiled = compiled
	sw.scenarios = scenarios
	sw.compileSec = time.Since(compileStart).Seconds()

	// Trust journal records only where the content-addressed identity
	// still checks out: same spec hash and, per scenario, the same
	// recomputed hash. A mismatch (journal from an older build) falls
	// back to recompute for the affected scenarios — correctness over
	// thrift.
	specOK := compiled.Hash() == m.SpecHash
	if !specOK {
		sw.specHash = compiled.Hash()
		if s.logf != nil {
			s.logf("service: recover %s: spec hash drifted %s -> %s; recomputing all scenarios",
				sw.id, m.SpecHash, sw.specHash)
		}
	}
	hashOK := make([]bool, len(scenarios))
	for i, sc := range scenarios {
		h, herr := HashScenario(sc)
		if herr != nil {
			return 0, 0, fmt.Errorf("scenario %d hash: %w", i, herr)
		}
		hashOK[i] = specOK && h == m.ScenarioHashes[i]
		sw.hashes[i] = h
		sw.statuses[i].Hash = h
	}
	var restored []ScenarioStatus
	for _, rec := range e.Records {
		if rec.Index < 0 || rec.Index >= len(sw.statuses) || !hashOK[rec.Index] {
			continue
		}
		switch ScenarioState(rec.State) {
		case StateDone, StateCached:
			// A "done" record whose result the store has since lost
			// (deleted, quarantined) is recomputed rather than served
			// as a result-less success.
			if !s.store.Has(sw.specHash, rec.Hash) {
				continue
			}
		case StateFailed:
		default:
			continue
		}
		applyRecord(sw, rec)
	}
	for i := range sw.statuses {
		if sw.statuses[i].Terminal() {
			terminal++
			restored = append(restored, sw.statuses[i])
		} else {
			requeued++
		}
	}

	// Re-enqueued scenarios bypass the MaxPending gate — shedding
	// journaled work at startup would turn a restart into data loss —
	// but still count as pending so admission and Retry-After see the
	// true backlog. Each re-run releases its reservation through the
	// normal record() path.
	s.pending.Add(int64(requeued))
	if j, jerr := s.store.OpenJournal(sw.id); jerr == nil {
		sw.journal = j
	} else if s.logf != nil {
		s.logf("service: recover %s: journal reopen: %v (resuming without journaling)", sw.id, jerr)
	}
	if err := s.registerRecovered(sw); err != nil {
		s.pending.Add(-int64(requeued))
		return 0, 0, err
	}
	s.recAdopted.Inc()
	s.requeued.Add(uint64(requeued))
	for _, st := range restored {
		// The restored scenarios' lifecycle spans re-emit with the
		// journal tier so the trace explains why no compute happened.
		sw.emitSpan(st.Index, st, tierJournal)
	}
	go sw.run(m.MaxConcurrent)
	return requeued, terminal, nil
}
