package service

// Durable sweep journal tests: crash-recovering an in-flight sweep
// without recomputing journaled-terminal scenarios, re-registering
// finished sweeps for status/result serving across restarts, idempotent
// submission (in-process, concurrent, and across a restart), journal
// degradation on I/O failure, and journal cleanup on sweep removal.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/store"
)

// waitJournalAppends polls until the store has durably appended at
// least n journal records — the only reliable "these scenarios are on
// disk" barrier, since in-memory status flips before the fsync.
func waitJournalAppends(t *testing.T, st *store.Store, n uint64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for st.Stats().JournalAppends < n {
		if time.Now().After(deadline) {
			t.Fatalf("journal appends stuck at %d, want >= %d", st.Stats().JournalAppends, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoverResumesKilledSweep is the tentpole acceptance test in the
// local-pool shape: a sweep is killed mid-flight (journal detached to
// fabricate kill -9), a fresh service over the same store directory
// re-adopts it, restores the journaled-terminal scenarios without
// recompute, re-runs only the remainder, and finishes the sweep —
// idempotency key included.
func TestRecoverResumesKilledSweep(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(chaosOptions(st1))
	const n, blocked = 8, 2 // indices 6,7 never finish before the "kill"
	gate := make(chan struct{})
	svc1.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if f.Index < n-blocked {
				return nil
			}
			select {
			case <-gate:
			case <-ctx.Done():
			}
			if err := ctx.Err(); err != nil {
				return err // killed: the scenario must die cancelled, not finish
			}
			return nil
		},
	})
	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(900+i), 1800)
	}
	sw, err := svc1.Submit(config.Frontier(), scenarios, SweepOptions{Name: "kill-me", Key: "kill-key"})
	if err != nil {
		t.Fatal(err)
	}
	waitJournalAppends(t, st1, n-blocked)

	// Fabricate kill -9: sever the journal exactly as a crash would
	// leave it, then tear the old process down.
	sw.DetachJournal()
	svc1.CancelAll()
	close(gate)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(chaosOptions(st2))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Adopted != 1 || stats.Finished != 0 {
		t.Fatalf("recover stats %+v, want 1 adopted", stats)
	}
	if stats.Terminal != n-blocked || stats.Requeued != blocked {
		t.Fatalf("recover stats %+v, want %d terminal / %d requeued", stats, n-blocked, blocked)
	}
	got, ok := svc2.Sweep(sw.ID())
	if !ok {
		t.Fatalf("recovered service does not serve sweep %s", sw.ID())
	}
	if !got.Recovered() {
		t.Fatal("adopted sweep not marked recovered")
	}
	final := waitSweep(t, got)
	if !final.Recovered {
		t.Fatal("status does not carry recovered flag")
	}
	if final.Key != "kill-key" {
		t.Fatalf("status key = %q, want kill-key", final.Key)
	}
	if final.Done+final.Cached != n || final.Failed != 0 || final.Cancelled != 0 {
		t.Fatalf("recovered sweep final status %+v", final)
	}
	// Zero recompute of journaled-terminal scenarios: only the two
	// requeued ones computed (and Put) after the restart.
	if p := st2.Stats().Puts; p != blocked {
		t.Fatalf("post-restart puts = %d, want %d (restored scenarios recomputed?)", p, blocked)
	}
	for i, res := range got.Results() {
		if res == nil || res.Report == nil {
			t.Fatalf("scenario %d: no result after recovery", i)
		}
	}
	// Resubmission with the original idempotency key returns the
	// recovered sweep, not a new one.
	dup, existing, err := svc2.SubmitIdempotent(config.Frontier(), scenarios, SweepOptions{Key: "kill-key"})
	if err != nil {
		t.Fatal(err)
	}
	if !existing || dup.ID() != sw.ID() {
		t.Fatalf("same-key resubmission: existing=%v id=%s, want dedup to %s", existing, dup.ID(), sw.ID())
	}
}

// TestRecoverFinishedSweepServesStatusAndResults: a sweep that finished
// (end line journaled, including a permanent per-scenario failure)
// survives a restart as queryable status — failure text and attempt
// count intact — with results lazily re-read from the store and zero
// recompute.
func TestRecoverFinishedSweepServesStatusAndResults(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(chaosOptions(st1))
	const failIdx = 2
	svc1.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if f.Index == failIdx {
				return errors.New("chaos: injected permanent failure")
			}
			return nil
		},
	})
	scenarios := []core.Scenario{
		synthScenario(801, 1800), synthScenario(802, 1800),
		synthScenario(803, 1800), synthScenario(804, 1800),
	}
	sw, err := svc1.Submit(config.Frontier(), scenarios, SweepOptions{Name: "finished", Key: "fin-key"})
	if err != nil {
		t.Fatal(err)
	}
	first := waitSweep(t, sw)
	if first.Done != 3 || first.Failed != 1 {
		t.Fatalf("setup sweep status %+v", first)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(chaosOptions(st2))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Finished != 1 || stats.Adopted != 0 || stats.Requeued != 0 {
		t.Fatalf("recover stats %+v, want 1 finished", stats)
	}
	got, ok := svc2.Sweep(sw.ID())
	if !ok {
		t.Fatalf("finished sweep %s not served after restart", sw.ID())
	}
	// Already terminal: Wait must return immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := got.Wait(ctx); err != nil {
		t.Fatalf("recovered finished sweep not done: %v", err)
	}
	gs := got.Status()
	if !gs.Recovered || !gs.Finished || gs.Done != 3 || gs.Failed != 1 {
		t.Fatalf("recovered status %+v", gs)
	}
	fs := gs.Scenarios[failIdx]
	if fs.State != StateFailed || !strings.Contains(fs.Error, "injected permanent failure") || fs.Attempts != 3 {
		t.Fatalf("failure record lost across restart: %+v", fs)
	}
	if p := st2.Stats().Puts; p != 0 {
		t.Fatalf("recovery of a finished sweep computed something: %d puts", p)
	}
	res := got.Results()
	for i := range scenarios {
		if i == failIdx {
			if res[i] != nil {
				t.Fatalf("failed scenario %d has a result", i)
			}
			continue
		}
		if res[i] == nil || res[i].Report == nil {
			t.Fatalf("scenario %d: result not lazily loaded from store", i)
		}
	}
	if p := st2.Stats().Puts; p != 0 {
		t.Fatalf("lazy result load wrote to the store: %d puts", p)
	}
	// The rebound key dedupes too.
	dup, existing, err := svc2.SubmitIdempotent(config.Frontier(), scenarios, SweepOptions{Key: "fin-key"})
	if err != nil {
		t.Fatal(err)
	}
	if !existing || dup.ID() != sw.ID() {
		t.Fatalf("same-key resubmission after restart: existing=%v id=%s", existing, dup.ID())
	}
}

// TestSubmitIdempotentConcurrent drives one key from many goroutines:
// exactly one submission creates the sweep, every other call returns the
// same id with existing=true, and the admission ledger is not leaked by
// the losers (a full second sweep still fits afterwards).
func TestSubmitIdempotentConcurrent(t *testing.T) {
	svc := New(Options{Workers: 4, MaxPending: 8})
	scenarios := []core.Scenario{synthScenario(701, 1800), synthScenario(702, 1800)}
	spec := config.Frontier()

	const callers = 8
	ids := make([]string, callers)
	created := make([]bool, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sw, existing, err := svc.SubmitIdempotent(spec, scenarios, SweepOptions{Key: "same-key"})
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
				return
			}
			ids[g] = sw.ID()
			created[g] = !existing
		}(g)
	}
	wg.Wait()
	creators := 0
	for g := 0; g < callers; g++ {
		if ids[g] != ids[0] {
			t.Fatalf("caller %d got id %s, caller 0 got %s", g, ids[g], ids[0])
		}
		if created[g] {
			creators++
		}
	}
	if creators != 1 {
		t.Fatalf("%d callers created the sweep, want exactly 1", creators)
	}
	sw, _ := svc.Sweep(ids[0])
	waitSweep(t, sw)
	// Losers must have returned their admission reservations: the queue
	// has room for a fresh 8-scenario sweep (MaxPending is 8).
	big := make([]core.Scenario, 8)
	for i := range big {
		big[i] = synthScenario(int64(710+i), 1800)
	}
	sw2, err := svc.Submit(spec, big, SweepOptions{})
	if err != nil {
		t.Fatalf("admission ledger leaked by dedup losers: %v", err)
	}
	waitSweep(t, sw2)
}

// TestJournalErrorDegradesToInMemory: a store whose journal directory
// cannot be created (a file squats on the name) must not fail
// submissions — the sweep runs in-memory-only and the failure is
// counted.
func TestJournalErrorDegradesToInMemory(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the journal directory name so MkdirAll fails with ENOTDIR.
	if err := os.WriteFile(filepath.Join(dir, "sweeps"), []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 2, Store: st})
	sw, err := svc.Submit(config.Frontier(), []core.Scenario{synthScenario(601, 1800)}, SweepOptions{})
	if err != nil {
		t.Fatalf("journal failure leaked into submission: %v", err)
	}
	final := waitSweep(t, sw)
	if final.Done != 1 {
		t.Fatalf("degraded sweep did not finish: %+v", final)
	}
	m := st.Stats()
	if m.JournalErrors == 0 {
		t.Fatal("journal create failure not counted")
	}
	if m.JournalCreates != 0 {
		t.Fatalf("JournalCreates = %d with an unwritable journal dir", m.JournalCreates)
	}
}

// TestRemoveSweepRemovesJournal: dropping a finished sweep from the
// registry deletes its journal, so the sweeps/ directory is bounded by
// sweep retention exactly like the in-memory registry.
func TestRemoveSweepRemovesJournal(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 2, Store: st})
	sw, err := svc.Submit(config.Frontier(), []core.Scenario{synthScenario(501, 1800)}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw)
	if st.JournalCount() != 1 {
		t.Fatalf("JournalCount = %d after submit, want 1", st.JournalCount())
	}
	if err := svc.Remove(sw.ID()); err != nil {
		t.Fatal(err)
	}
	if st.JournalCount() != 0 {
		t.Fatalf("journal survived sweep removal")
	}
}

// postSweepRaw submits without asserting the status code, optionally
// with an Idempotency-Key header, and returns the response.
func postSweepRaw(t *testing.T, url string, req SubmitRequest, key string) (*http.Response, SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/api/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack SubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return resp, ack
}

func smallSubmit(name string, seeds ...int64) SubmitRequest {
	req := SubmitRequest{Name: name}
	for _, seed := range seeds {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = seed
		req.Scenarios = append(req.Scenarios, ScenarioRequest{
			Workload:   "synthetic",
			HorizonSec: 1800,
			TickSec:    15,
			Generator:  &gen,
		})
	}
	return req
}

// TestHTTPIdempotencyKeyDedupes: the first submission with a key is a
// 202; a resubmission with the same key — via header or the sweep_key
// field — is a 200 carrying the original id and deduplicated=true, and
// no second sweep exists.
func TestHTTPIdempotencyKeyDedupes(t *testing.T) {
	svc := New(Options{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp1, ack1 := postSweepRaw(t, srv.URL, smallSubmit("idem", 1, 2), "key-http-1")
	if resp1.StatusCode != http.StatusAccepted || ack1.Deduplicated {
		t.Fatalf("first submit: status %d deduplicated=%v", resp1.StatusCode, ack1.Deduplicated)
	}
	resp2, ack2 := postSweepRaw(t, srv.URL, smallSubmit("idem", 1, 2), "key-http-1")
	if resp2.StatusCode != http.StatusOK || !ack2.Deduplicated || ack2.ID != ack1.ID {
		t.Fatalf("header resubmit: status %d deduplicated=%v id=%s want %s",
			resp2.StatusCode, ack2.Deduplicated, ack2.ID, ack1.ID)
	}
	// The body field works too (header absent).
	req := smallSubmit("idem", 1, 2)
	req.SweepKey = "key-http-1"
	resp3, ack3 := postSweepRaw(t, srv.URL, req, "")
	if resp3.StatusCode != http.StatusOK || !ack3.Deduplicated || ack3.ID != ack1.ID {
		t.Fatalf("sweep_key resubmit: status %d deduplicated=%v id=%s", resp3.StatusCode, ack3.Deduplicated, ack3.ID)
	}
	if got := len(svc.List()); got != 1 {
		t.Fatalf("%d sweeps registered after deduped resubmissions, want 1", got)
	}
	sw, _ := svc.Sweep(ack1.ID)
	waitSweep(t, sw)
}

// TestHTTPClosedSendsRetryAfter: once the service enters its drain
// window, submissions are refused 503 with a Retry-After derived from
// the remaining drain deadline — not a bare connection error.
func TestHTTPClosedSendsRetryAfter(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	svc.CloseDraining(10 * time.Second)
	resp, _ := postSweepRaw(t, srv.URL, smallSubmit("late", 9), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After header %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra < 1 || ra > 11 {
		t.Fatalf("Retry-After = %d, want within the 10s drain window (+1)", ra)
	}
}

// TestNewSweepIDCollisionFree pins the id shape: "sw-" + hex time +
// random suffix, valid for both the journal alphabet and route
// normalization, and unique across rapid minting.
func TestNewSweepIDCollisionFree(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := newSweepID()
		if !strings.HasPrefix(id, "sw-") || !store.ValidSweepID(id) {
			t.Fatalf("minted invalid sweep id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate sweep id %q after %d mints", id, i)
		}
		seen[id] = true
	}
}
