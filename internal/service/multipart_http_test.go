package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/raps"
)

// TestHTTPSweepSetonixPartitions drives a two-partition sweep through
// the HTTP API end to end: per-partition workload knobs submit cleanly,
// scenarios differing only in a partition's workload hash (and cache)
// separately, and results carry per-partition reports.
func TestHTTPSweepSetonixPartitions(t *testing.T) {
	svc := New(Options{Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{
		"name": "setonix-mix",
		"spec_name": "setonix-like",
		"scenarios": [
			{"workload": "idle", "horizon_sec": 900, "tick_sec": 15, "cooling": true, "wetbulb_c": 20,
			 "partitions": [{"workload": "synthetic"}, {"workload": "idle"}]},
			{"workload": "idle", "horizon_sec": 900, "tick_sec": 15, "cooling": true, "wetbulb_c": 20,
			 "partitions": [{"workload": "synthetic"}, {"workload": "peak"}]}
		]
	}`
	resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if sub.ScenarioHashes[0] == sub.ScenarioHashes[1] {
		t.Fatal("scenarios differing only in a partition workload share a hash")
	}
	sw, ok := svc.Sweep(sub.ID)
	if !ok {
		t.Fatal("sweep vanished")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := sw.Status()
	if st.Done != 2 {
		t.Fatalf("sweep status %+v", st)
	}
	for i, res := range sw.Results() {
		if res == nil || len(res.Report.Partitions) != 2 {
			t.Fatalf("scenario %d result lacks partition reports: %+v", i, res)
		}
	}
	// The peak-GPU scenario must burn visibly more energy than the idle
	// one — the partition knob reached the simulation.
	r := sw.Results()
	if r[1].Report.EnergyMWh <= r[0].Report.EnergyMWh {
		t.Errorf("peak-GPU scenario %v MWh not above idle-GPU %v MWh",
			r[1].Report.EnergyMWh, r[0].Report.EnergyMWh)
	}
}

// TestHTTPSweepPartitionCountMismatch pins the submit-time guard: a
// partition list not covering the spec is a 400, not a worker failure.
func TestHTTPSweepPartitionCountMismatch(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := `{"spec_name": "setonix-like", "scenarios": [
		{"workload": "idle", "horizon_sec": 60, "partitions": [{"workload": "peak"}]}
	]}`
	resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched partitions = %d, want 400", resp.StatusCode)
	}

	// Replay is never a valid per-partition workload — rejected at
	// submit, not inside a worker.
	body = `{"spec_name": "setonix-like", "scenarios": [
		{"workload": "idle", "horizon_sec": 60,
		 "partitions": [{"workload": "replay"}, {"workload": "idle"}]}
	]}`
	resp, err = http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("per-partition replay = %d, want 400", resp.StatusCode)
	}
}

// TestScenarioHashPartitionStability pins the hash contract: an absent
// partition list leaves pre-partition hashes unchanged, and partition
// knobs (workload, generator seed, job cap) each move the hash.
func TestScenarioHashPartitionStability(t *testing.T) {
	base := core.Scenario{Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15}
	h1, err := HashScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	withNil := base
	withNil.Partitions = nil
	h2, err := HashScenario(withNil)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("nil partition list changed the scenario hash")
	}
	variants := []core.Scenario{
		{Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			Partitions: []core.PartitionScenario{{Workload: core.WorkloadSynthetic}, {Workload: core.WorkloadIdle}}},
		{Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			Partitions: []core.PartitionScenario{{Workload: core.WorkloadSynthetic}, {Workload: core.WorkloadPeak}}},
		{Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			Partitions: []core.PartitionScenario{{Workload: core.WorkloadSynthetic, MaxJobs: 5}, {Workload: core.WorkloadPeak}}},
		{Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			Partitions: []core.PartitionScenario{{Workload: core.WorkloadSynthetic, Generator: job.GeneratorConfig{Seed: 9}}, {Workload: core.WorkloadPeak}}},
	}
	seen := map[string]int{h1: -1}
	for i, sc := range variants {
		h, err := HashScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %d hashes like variant %d", i, prev)
		}
		seen[h] = i
	}

	// Scenario-level workload knobs are ignored when an explicit
	// partition list is set, so spellings differing only in an ignored
	// field must share one cache entry.
	a := variants[0]
	b := variants[0]
	b.Workload = core.WorkloadPeak
	b.Generator = job.GeneratorConfig{Seed: 123}
	b.BenchmarkWallSec = 7200
	ha, err := HashScenario(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashScenario(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("ignored scenario-level knobs changed the hash of a partitioned scenario")
	}
}

// TestResultCacheByteBound pins the byte-bounded eviction: inserting
// results past the byte capacity evicts oldest-first, and the metrics
// surface bytes/capacity_bytes.
func TestResultCacheByteBound(t *testing.T) {
	c := newResultCache(100, 10_000)
	insert := func(key string, samples int) {
		e, leader := c.acquire(key)
		if !leader {
			t.Fatalf("key %q already present", key)
		}
		res := &core.Result{History: make([]raps.Sample, samples)}
		c.complete(key, e, res, nil)
	}
	insert("a", 10)
	insert("b", 10)
	ev, entries, _, bytes, maxBytes := c.stats()
	if maxBytes != 10_000 {
		t.Fatalf("maxBytes = %d", maxBytes)
	}
	if ev != 0 || entries != 2 || bytes <= 0 || bytes > 10_000 {
		t.Fatalf("after small inserts: ev=%d entries=%d bytes=%d", ev, entries, bytes)
	}
	// A large result pushes the total over the byte bound: the oldest
	// entries go first.
	insert("big", 40)
	ev, entries, _, bytes, _ = c.stats()
	if ev == 0 {
		t.Fatal("byte bound triggered no evictions")
	}
	if bytes > 10_000 {
		t.Fatalf("cache holds %d bytes over the %d bound", bytes, 10_000)
	}
	if _, leader := c.acquire("a"); !leader {
		t.Fatal("oldest entry survived byte-bound eviction")
	}
	_ = entries

	// An entry larger than the whole byte bound is dropped alone —
	// never by flushing the warm entries around it.
	_, entriesBefore, _, _, _ := c.stats()
	insert("huge", 10_000) // ≫ the 10 kB bound
	_, entriesAfter, _, _, _ := c.stats()
	if entriesAfter < entriesBefore {
		t.Fatalf("oversized insert flushed warm entries: %d -> %d", entriesBefore, entriesAfter)
	}
	if _, leader := c.acquire("huge"); !leader {
		t.Fatal("oversized entry was retained")
	}

	// The byte accounting is surfaced on /api/sweeps/metrics.
	svc := New(Options{Workers: 1, CacheMaxBytes: 123456})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/sweeps/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Cache CacheMetrics `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cache.CapacityBytes != 123456 {
		t.Fatalf("capacity_bytes = %d, want 123456", doc.Cache.CapacityBytes)
	}
}
