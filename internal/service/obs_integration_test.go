package service

// Observability integration suite — the acceptance tests for the
// unified metrics/tracing layer: /metrics scraped mid-sweep parses
// under the strict exposition validator, counters never move backwards
// between scrapes, the JSON snapshot endpoints and the Prometheus
// exposition report identical values (single source of truth), and a
// chaos sweep's lifecycle spans reconcile exactly with the failure
// counters.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/obs"
	"exadigit/internal/store"
)

// scrapeExposition scrapes the registry through its real HTTP handler
// and runs the result through the strict parser and the naming linter.
func scrapeExposition(t *testing.T, reg *obs.Registry) *obs.Exposition {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	e, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("scrape failed strict validation: %v", err)
	}
	if err := obs.ValidateConventions(e, "exadigit_"); err != nil {
		t.Fatalf("scrape violates naming conventions: %v", err)
	}
	return e
}

// assertMonotone checks that no counter or histogram sample moved
// backwards between two scrapes, and that no series disappeared.
func assertMonotone(t *testing.T, before, after *obs.Exposition) {
	t.Helper()
	av := after.Series()
	for name, f := range before.Families {
		if f.Type == "gauge" {
			continue
		}
		for _, s := range f.Series {
			id := s.ID()
			now, ok := av[id]
			if !ok {
				t.Errorf("series %s disappeared between scrapes", id)
				continue
			}
			if now < s.Value {
				t.Errorf("%s (%s) went backwards: %v -> %v", id, name, s.Value, now)
			}
		}
	}
}

// seriesValue fetches one unlabeled sample from a parsed scrape.
func seriesValue(t *testing.T, e *obs.Exposition, name string) float64 {
	t.Helper()
	v, ok := e.Series()[name+"{}"]
	if !ok {
		t.Fatalf("series %s not in scrape", name)
	}
	return v
}

// TestMetricsScrapeDuringMixedPlantSweep is the scrape acceptance test:
// a 32-scenario sweep mixing three cooling-plant variants is scraped
// twice mid-flight and once after completion; every scrape passes the
// strict exposition validator and the naming linter, counters are
// monotone across the three scrapes, and the terminal scrape accounts
// for every scenario span.
func TestMetricsScrapeDuringMixedPlantSweep(t *testing.T) {
	svc := New(Options{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const n = 32
	variants := coolingVariants()
	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		sc := synthScenario(int64(7000+i), 600)
		sc.TickSec = 30
		sc.CoolingSpec = &variants[i%len(variants)] // implies cooling
		scenarios[i] = sc
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{Name: "obs-mixed-plant"})
	if err != nil {
		t.Fatal(err)
	}

	// First scrape right after submission, while the pool is saturated.
	e1 := scrapeExposition(t, svc.Registry())

	// Generate some HTTP traffic so the middleware families carry data,
	// then scrape again once part of the sweep has finished — both
	// scrapes land mid-sweep on any machine slower than the pool.
	for _, path := range []string{"/api/sweeps", "/api/sweeps/metrics", "/api/sweeps/" + sw.ID()} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := sw.Status()
		if st.Done+st.Cached+st.Failed >= n/4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	e2 := scrapeExposition(t, svc.Registry())
	assertMonotone(t, e1, e2)

	stat := waitSweep(t, sw)
	if stat.Done != n {
		t.Fatalf("mixed-plant sweep status: %+v", stat)
	}
	e3 := scrapeExposition(t, svc.Registry())
	assertMonotone(t, e2, e3)

	// The terminal scrape carries the full accounting.
	for name, want := range map[string]float64{
		"exadigit_trace_spans_total":       n,
		"exadigit_cache_misses_total":      n, // 32 distinct hashes, all computed
		"exadigit_sweep_pending_scenarios": 0,
		"exadigit_sweep_workers":           4,
	} {
		if got := seriesValue(t, e3, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := seriesValue(t, e3, "exadigit_sweep_scenarios_per_second"); got <= 0 {
		t.Errorf("scenarios_per_second = %v, want > 0", got)
	}
	// The middleware families exist with the sweeps server label.
	series := e3.Series()
	reqID := obs.ExpoSeries{Name: "exadigit_http_requests_total",
		Labels: map[string]string{"server": "sweeps", "route": "/api/sweeps", "code": "2xx"}}.ID()
	if series[reqID] < 1 {
		t.Errorf("%s = %v, want >= 1", reqID, series[reqID])
	}
	durID := obs.ExpoSeries{Name: "exadigit_http_request_duration_seconds_count",
		Labels: map[string]string{"server": "sweeps"}}.ID()
	if series[durID] < 3 {
		t.Errorf("%s = %v, want >= 3", durID, series[durID])
	}
}

// TestMetricsJSONMatchesExposition pins the single-source-of-truth
// property: after a sweep with intra-sweep duplicates (cache hits) over
// a durable store, every counter in the /api/sweeps/metrics JSON
// snapshot equals its series in the Prometheus exposition.
func TestMetricsJSONMatchesExposition(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 4, Store: st})

	// 4 distinct scenarios, each submitted twice: the duplicate waiters
	// resolve from the in-memory tier and count as cache hits.
	scenarios := make([]core.Scenario, 8)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(100+i%4), 900)
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{Name: "obs-reconcile"})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw)
	if stat.Done+stat.Cached != len(scenarios) {
		t.Fatalf("sweep status: %+v", stat)
	}

	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/sweeps/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/api/sweeps/metrics status = %d", rec.Code)
	}
	var body struct {
		Cache    CacheMetrics   `json:"cache"`
		Failures FailureMetrics `json:"failures"`
		Store    store.Metrics  `json:"store"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Cache.Hits != 4 || body.Cache.Misses != 4 {
		t.Fatalf("cache snapshot = %+v, want 4 hits / 4 misses", body.Cache)
	}

	e := scrapeExposition(t, svc.Registry())
	for name, want := range map[string]float64{
		"exadigit_cache_hits_total":             float64(body.Cache.Hits),
		"exadigit_cache_misses_total":           float64(body.Cache.Misses),
		"exadigit_cache_evictions_total":        float64(body.Cache.Evictions),
		"exadigit_cache_entries":                float64(body.Cache.Entries),
		"exadigit_cache_bytes":                  float64(body.Cache.Bytes),
		"exadigit_sweep_retries_total":          float64(body.Failures.Retries),
		"exadigit_sweep_panics_recovered_total": float64(body.Failures.PanicsRecovered),
		"exadigit_sweep_timeouts_total":         float64(body.Failures.Timeouts),
		"exadigit_sweep_queue_rejections_total": float64(body.Failures.QueueRejections),
		"exadigit_sweep_pending_scenarios":      float64(body.Failures.Pending),
		"exadigit_sweep_max_pending":            float64(body.Failures.MaxPending),
		"exadigit_store_entries":                float64(body.Store.Entries),
	} {
		if got := seriesValue(t, e, name); got != want {
			t.Errorf("exposition %s = %v, JSON snapshot says %v", name, got, want)
		}
	}
	series := e.Series()
	for op, want := range map[string]uint64{
		"hit": body.Store.Hits, "miss": body.Store.Misses, "put": body.Store.Puts,
		"put_error": body.Store.PutErrors, "corrupt_quarantined": body.Store.CorruptQuarantined,
	} {
		id := obs.ExpoSeries{Name: "exadigit_store_ops_total",
			Labels: map[string]string{"op": op}}.ID()
		got, ok := series[id]
		if !ok {
			t.Errorf("series %s not in scrape", id)
			continue
		}
		if got != float64(want) {
			t.Errorf("exposition %s = %v, JSON snapshot says %d", id, got, want)
		}
	}
}

// TestChaosTraceMatchesFailureMetrics reconciles the lifecycle tracer
// against the failure counters over a chaos sweep: every attempt
// outcome recorded in a span corresponds one-to-one with a counter
// increment — timeouts, recovered panics, and retries all match
// FailureMetricsSnapshot exactly — and /api/sweeps/trace serves the
// same spans as NDJSON.
func TestChaosTraceMatchesFailureMetrics(t *testing.T) {
	svc := New(chaosOptions(nil))
	const (
		panicIdx     = 3
		timeoutIdx   = 5
		transientIdx = 7
		permIdx      = 11
		n            = 16
	)
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			switch {
			case f.Index == panicIdx && f.Attempt == 1:
				panic("chaos: injected worker panic")
			case f.Index == timeoutIdx && f.Attempt == 1:
				<-ctx.Done()
				return nil
			case f.Index == transientIdx && f.Attempt <= 2:
				return errors.New("chaos: injected transient failure")
			case f.Index == permIdx:
				return errors.New("chaos: injected permanent failure")
			}
			return nil
		},
	})

	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(5000+i), 900)
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{
		Name:            "obs-chaos",
		ScenarioTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw)
	if stat.Done != n-1 || stat.Failed != 1 {
		t.Fatalf("chaos sweep status: %+v", stat)
	}

	spans := svc.Tracer().Snapshot()
	if len(spans) != n {
		t.Fatalf("tracer holds %d spans, want %d", len(spans), n)
	}
	if got := svc.Tracer().Total(); got != n {
		t.Fatalf("tracer total = %d, want %d", got, n)
	}

	// Reconcile attempt outcomes against the counters. Retries is the
	// number of non-first attempts; each injected timeout and recovered
	// panic leaves exactly one attempt span with that outcome.
	var timeouts, panics, retries uint64
	byIndex := make(map[int]obs.Span, n)
	for _, sp := range spans {
		if sp.Sweep != sw.ID() {
			t.Fatalf("span for foreign sweep %s", sp.Sweep)
		}
		byIndex[sp.Index] = sp
		if len(sp.Attempts) > 0 {
			retries += uint64(len(sp.Attempts) - 1)
		}
		for i, a := range sp.Attempts {
			if a.Attempt != i+1 {
				t.Errorf("scenario %d attempt %d numbered %d", sp.Index, i+1, a.Attempt)
			}
			switch a.Outcome {
			case "timeout":
				timeouts++
			case "panic":
				panics++
			case "ok", "error":
			default:
				t.Errorf("scenario %d: unexpected outcome %q", sp.Index, a.Outcome)
			}
		}
	}
	fm := svc.FailureMetricsSnapshot()
	if timeouts != fm.Timeouts {
		t.Errorf("span timeout outcomes = %d, counter says %d", timeouts, fm.Timeouts)
	}
	if panics != fm.PanicsRecovered {
		t.Errorf("span panic outcomes = %d, counter says %d", panics, fm.PanicsRecovered)
	}
	if retries != fm.Retries {
		t.Errorf("span retries = %d, counter says %d", retries, fm.Retries)
	}

	// The injected scenarios carry the expected attempt timelines.
	checks := []struct {
		idx      int
		state    string
		outcomes []string
	}{
		{panicIdx, "done", []string{"panic", "ok"}},
		{timeoutIdx, "done", []string{"timeout", "ok"}},
		{transientIdx, "done", []string{"error", "error", "ok"}},
		{permIdx, "failed", []string{"error", "error", "error"}},
	}
	for _, c := range checks {
		sp := byIndex[c.idx]
		if sp.State != c.state {
			t.Errorf("scenario %d state %q, want %q", c.idx, sp.State, c.state)
		}
		if len(sp.Attempts) != len(c.outcomes) {
			t.Errorf("scenario %d has %d attempt spans, want %d", c.idx, len(sp.Attempts), len(c.outcomes))
			continue
		}
		for i, want := range c.outcomes {
			if got := sp.Attempts[i].Outcome; got != want {
				t.Errorf("scenario %d attempt %d outcome %q, want %q", c.idx, i+1, got, want)
			}
			if want != "ok" && sp.Attempts[i].Error == "" {
				t.Errorf("scenario %d attempt %d: failed outcome lacks error text", c.idx, i+1)
			}
		}
	}
	if sp := byIndex[permIdx]; sp.Error == "" || sp.CacheTier != "none" {
		t.Errorf("permanent-failure span = %+v, want error text and tier none", sp)
	}
	if sp := byIndex[0]; sp.CacheTier != "compute" || sp.TotalSec <= 0 {
		t.Errorf("computed span = %+v, want tier compute and positive total", sp)
	}

	// The NDJSON endpoint serves the same spans.
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/sweeps/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/api/sweeps/trace status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var served []obs.Span
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("trace line does not parse: %v", err)
		}
		served = append(served, sp)
	}
	if len(served) != n {
		t.Fatalf("trace endpoint served %d spans, want %d", len(served), n)
	}
	for i, sp := range served {
		if sp.Index != spans[i].Index || sp.ScenarioHash != spans[i].ScenarioHash ||
			sp.State != spans[i].State || len(sp.Attempts) != len(spans[i].Attempts) {
			t.Fatalf("trace line %d = %+v, snapshot has %+v", i, sp, spans[i])
		}
	}

	// ?limit=N trims to the most recent spans.
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/sweeps/trace?limit=5", nil))
	if got := strings.Count(rec.Body.String(), "\n"); got != 5 {
		t.Errorf("trace?limit=5 served %d spans", got)
	}
}
