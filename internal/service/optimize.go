package service

import (
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/optimize"
	"exadigit/internal/surrogate"
)

// This file wires the closed-loop co-design optimizer (internal/optimize)
// into the sweep service: each study's outer loop evaluates candidate
// batches as ordinary sweeps — inheriting the result cache, single-
// flight, retries, and -workers remote dispatch — while the inner loop
// screens candidates on the study's online-trained surrogate. Completed
// studies persist their surrogate fit as a durable-store blob keyed by
// (spec hash, search-space signature), so a restarted service can
// warm-start the next study over the same space.

// StudyState is the lifecycle of one optimization study.
type StudyState string

// Study states.
const (
	StudyRunning   StudyState = "running"
	StudyDone      StudyState = "done"
	StudyFailed    StudyState = "failed"
	StudyCancelled StudyState = "cancelled"
)

// StudyOptions parameterizes one study submission.
type StudyOptions struct {
	// Name labels the study in listings.
	Name string
	// WarmStart loads a previously persisted surrogate fit for the same
	// (spec, knobs, targets) from the durable store, when one exists.
	// Off by default: a warm model changes which candidates the early
	// generations promote, so reproducing a cold study bit-for-bit
	// requires opting out.
	WarmStart bool
}

// StudyStatus is a point-in-time snapshot of a study.
type StudyStatus struct {
	ID          string     `json:"id"`
	Name        string     `json:"name,omitempty"`
	SpecHash    string     `json:"spec_hash"`
	CreatedAt   time.Time  `json:"created_at"`
	State       StudyState `json:"state"`
	Error       string     `json:"error,omitempty"`
	WarmStarted bool       `json:"warm_started,omitempty"`
	// Progress is the latest per-generation snapshot (nil until the
	// first generation completes).
	Progress *optimize.Progress `json:"progress,omitempty"`
}

// Study is one running or finished optimization study.
type Study struct {
	id          string
	name        string
	specHash    string
	createdAt   time.Time
	warmStarted bool
	cancel      context.CancelFunc
	done        chan struct{}

	mu       sync.Mutex
	state    StudyState
	errMsg   string
	progress []optimize.Progress
	result   *optimize.StudyResult
	notify   chan struct{} // closed and replaced on every state change
}

func newStudyID() string {
	var b [4]byte
	_, _ = cryptorand.Read(b[:])
	return fmt.Sprintf("opt-%x-%x", time.Now().UnixNano(), b)
}

// ID returns the study's identifier.
func (st *Study) ID() string { return st.id }

// Cancel aborts the study: the in-flight generation sweep is cancelled
// and the driver stops at its next batch boundary. Safe to call
// repeatedly.
func (st *Study) Cancel() { st.cancel() }

// Done returns a channel closed once the study reaches a terminal state.
func (st *Study) Done() <-chan struct{} { return st.done }

// Wait blocks until the study finishes or ctx expires.
func (st *Study) Wait(ctx context.Context) error {
	select {
	case <-st.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots the study.
func (st *Study) Status() StudyStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := StudyStatus{
		ID:          st.id,
		Name:        st.name,
		SpecHash:    st.specHash,
		CreatedAt:   st.createdAt,
		State:       st.state,
		Error:       st.errMsg,
		WarmStarted: st.warmStarted,
	}
	if n := len(st.progress); n > 0 {
		p := st.progress[n-1]
		out.Progress = &p
	}
	return out
}

// Result returns the completed study result (nil until State is
// StudyDone).
func (st *Study) Result() *optimize.StudyResult {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.result
}

// ProgressLog snapshots every per-generation progress entry emitted so
// far, oldest first.
func (st *Study) ProgressLog() []optimize.Progress {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]optimize.Progress(nil), st.progress...)
}

// changed returns a channel closed at the next state change — the
// broadcast primitive behind the streaming endpoint.
func (st *Study) changed() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.notify
}

func (st *Study) update(mutate func()) {
	st.mu.Lock()
	mutate()
	close(st.notify)
	st.notify = make(chan struct{})
	st.mu.Unlock()
}

// registerOptimizeMetrics attaches the optimizer counters; called from
// registerMetrics. The evaluation tiers are pre-touched so the
// exposition carries all three series from the first scrape.
func (s *Service) registerOptimizeMetrics() {
	reg := s.reg
	s.optEvals = reg.CounterVec("exadigit_optimize_evaluations_total",
		"Optimizer candidate evaluations by tier: full twin, served from a cache tier, or screened on the surrogate alone.",
		"tier")
	for _, tier := range []string{"twin", "cached", "surrogate"} {
		s.optEvals.With(tier)
	}
	s.optFallbacks = reg.Counter("exadigit_optimize_fallbacks_total",
		"Candidates the surrogate wanted to screen but the UQ gate sent to the full twin instead.")
	s.optGenerations = reg.Counter("exadigit_optimize_generations_total",
		"Optimizer generations completed across all studies.")
	s.optFrontier = reg.Gauge("exadigit_optimize_frontier_size",
		"Pareto-frontier size of the most recently progressed study.")
}

// sweepEvaluator implements optimize.Evaluator by submitting each
// candidate batch as one ephemeral sweep — evaluations ride the result
// cache, single-flight, retries, and remote dispatch exactly like any
// hand-submitted sweep. Ephemeral because the study (not the journal)
// owns re-driving the search after a crash: a re-run study re-requests
// the same scenarios and the durable result store serves them warm.
type sweepEvaluator struct {
	svc      *Service
	spec     config.SystemSpec
	compiled *core.CompiledSpec
	studyID  string
}

// Evaluate runs one candidate batch. Per-candidate plant validation
// happens here (Submit fails a whole sweep on one invalid CoolingSpec)
// so an infeasible AutoCSM sizing becomes that candidate's infeasibility
// verdict, not a study-fatal error.
func (e *sweepEvaluator) Evaluate(ctx context.Context, gen int, scenarios []core.Scenario) ([]optimize.Outcome, error) {
	outs := make([]optimize.Outcome, len(scenarios))
	valid := make([]int, 0, len(scenarios))
	batch := make([]core.Scenario, 0, len(scenarios))
	for i, sc := range scenarios {
		if sc.CoolingSpec != nil {
			if err := sc.CoolingSpec.Validate(); err != nil {
				outs[i].Err = err.Error()
				continue
			}
			if _, err := e.compiled.CoolingDesignFor(*sc.CoolingSpec); err != nil {
				outs[i].Err = err.Error()
				continue
			}
		}
		valid = append(valid, i)
		batch = append(batch, sc)
	}
	if len(batch) == 0 {
		return outs, nil
	}
	name := fmt.Sprintf("%s gen %d", e.studyID, gen)
	if gen < 0 {
		name = e.studyID + " baseline"
	}
	sw, err := e.svc.Submit(e.spec, batch, SweepOptions{Name: name, Ephemeral: true})
	if err != nil {
		return nil, err
	}
	if err := sw.Wait(ctx); err != nil {
		sw.Cancel()
		<-sw.Done()
		return nil, err
	}
	status := sw.Status()
	results := sw.Results()
	for bi, i := range valid {
		sst := status.Scenarios[bi]
		outs[i].CacheHit = sst.CacheHit || sst.State == StateCached
		if results[bi] != nil && results[bi].Report != nil {
			outs[i].Report = results[bi].Report
		} else {
			msg := sst.Error
			if msg == "" {
				msg = fmt.Sprintf("scenario %s", sst.State)
			}
			outs[i].Err = msg
		}
	}
	return outs, nil
}

// optimizeModelBlobName derives the durable-store blob name a study's
// surrogate persists under: the spec hash plus a content hash of the
// search-space signature (knobs, objectives, constraints), so a warm
// start only ever loads a fit whose feature space and targets match.
func optimizeModelBlobName(specHash string, study optimize.StudySpec) string {
	sig := struct {
		Knobs       []optimize.Knob       `json:"knobs"`
		Objectives  []optimize.Objective  `json:"objectives"`
		Constraints []optimize.Constraint `json:"constraints"`
	}{study.Knobs, study.Objectives, study.Constraints}
	b, _ := json.Marshal(sig)
	sum := sha256.Sum256(b)
	return "optimize-" + specHash[:16] + "-" + hex.EncodeToString(sum[:8]) + ".json"
}

// SubmitStudy registers an optimization study and starts working it
// asynchronously: the driver's generations run as ephemeral sweeps
// through the service's pool. The returned Study is immediately
// observable via Status, ProgressLog, Result, and Done.
func (s *Service) SubmitStudy(spec config.SystemSpec, base core.Scenario, study optimize.StudySpec, opts StudyOptions) (*Study, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	compiled, err := s.compiledFor(spec)
	if err != nil {
		return nil, err
	}
	specHash := compiled.Hash()

	st := &Study{
		id:        newStudyID(),
		name:      opts.Name,
		specHash:  specHash,
		createdAt: time.Now(),
		state:     StudyRunning,
		done:      make(chan struct{}),
		notify:    make(chan struct{}),
	}

	// Warm start: load the persisted surrogate fit for this exact
	// (spec, search space) when asked. A missing or unreadable blob is
	// a cold start, never an error.
	var warmModel *surrogate.Model
	if opts.WarmStart && s.store != nil && !study.DisableSurrogate {
		if data, err := s.store.GetBlob(optimizeModelBlobName(specHash, study)); err == nil {
			m := &surrogate.Model{}
			if jerr := json.Unmarshal(data, m); jerr == nil {
				warmModel = m
				st.warmStarted = true
			} else if s.logf != nil {
				s.logf("service: study %s: warm-start blob unreadable: %v", st.id, jerr)
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	st.cancel = cancel

	ev := &sweepEvaluator{svc: s, spec: spec, compiled: compiled, studyID: st.id}
	hooks := optimize.Hooks{
		OnTwinEval: func(cached bool) {
			if cached {
				s.optEvals.With("cached").Inc()
			} else {
				s.optEvals.With("twin").Inc()
			}
		},
		OnScreened:   func() { s.optEvals.With("surrogate").Inc() },
		OnFallback:   func() { s.optFallbacks.Inc() },
		OnGeneration: func() { s.optGenerations.Inc() },
		OnProgress: func(p optimize.Progress) {
			s.optFrontier.Set(float64(p.FrontierSize))
			st.update(func() { st.progress = append(st.progress, p) })
		},
	}
	drv, err := optimize.NewDriver(study, base, spec.Cooling, ev, hooks, warmModel)
	if err != nil {
		cancel()
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	s.studies[st.id] = st
	s.studyOrder = append(s.studyOrder, st.id)
	s.pruneStudiesLocked()
	s.mu.Unlock()

	go s.runStudy(ctx, st, drv, specHash, study)
	return st, nil
}

// runStudy drives one study to a terminal state and persists the
// trained surrogate.
func (s *Service) runStudy(ctx context.Context, st *Study, drv *optimize.Driver, specHash string, study optimize.StudySpec) {
	defer st.cancel()
	res, err := drv.Run(ctx)
	if err != nil {
		state := StudyFailed
		if errors.Is(err, context.Canceled) {
			state = StudyCancelled
		}
		st.update(func() {
			st.state = state
			st.errMsg = err.Error()
		})
		close(st.done)
		return
	}
	if res.Model != nil && s.store != nil {
		if data, merr := json.Marshal(res.Model); merr == nil {
			if perr := s.store.PutBlob(optimizeModelBlobName(specHash, study), data); perr != nil && s.logf != nil {
				s.logf("service: study %s: persist surrogate: %v", st.id, perr)
			}
		}
	}
	st.update(func() {
		st.state = StudyDone
		st.result = res
	})
	close(st.done)
}

// pruneStudiesLocked drops the oldest finished studies beyond the sweep
// retention cap so a long-running server's study registry stays bounded.
// Callers hold s.mu.
func (s *Service) pruneStudiesLocked() {
	excess := len(s.studyOrder) - s.maxSweeps
	if excess <= 0 {
		return
	}
	kept := s.studyOrder[:0]
	for _, id := range s.studyOrder {
		st := s.studies[id]
		finished := false
		if st != nil {
			select {
			case <-st.done:
				finished = true
			default:
			}
		}
		if excess > 0 && (st == nil || finished) {
			delete(s.studies, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.studyOrder = kept
}

// StudyByID resolves a study.
func (s *Service) StudyByID(id string) (*Study, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[id]
	return st, ok
}

// ListStudies snapshots every retained study in submission order.
func (s *Service) ListStudies() []StudyStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.studyOrder...)
	s.mu.Unlock()
	out := make([]StudyStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.StudyByID(id); ok {
			out = append(out, st.Status())
		}
	}
	return out
}

// CancelStudy aborts a study by id.
func (s *Service) CancelStudy(id string) error {
	st, ok := s.StudyByID(id)
	if !ok {
		return fmt.Errorf("service: no study %q", id)
	}
	st.Cancel()
	return nil
}

// cancelAllStudies aborts every study (CancelAll's optimizer half).
func (s *Service) cancelAllStudies() {
	s.mu.Lock()
	studies := make([]*Study, 0, len(s.studies))
	for _, st := range s.studies {
		studies = append(studies, st)
	}
	s.mu.Unlock()
	for _, st := range studies {
		st.Cancel()
	}
}

// drainStudies blocks until every study reaches a terminal state or ctx
// expires (Drain's optimizer half — after Close, a running study fails
// fast at its next generation submission, so this converges).
func (s *Service) drainStudies(ctx context.Context) error {
	s.mu.Lock()
	studies := make([]*Study, 0, len(s.studies))
	for _, st := range s.studies {
		studies = append(studies, st)
	}
	s.mu.Unlock()
	for _, st := range studies {
		select {
		case <-st.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
