package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"exadigit/internal/config"
	"exadigit/internal/optimize"
)

// HTTP face of the co-design optimizer:
//
//	POST   /api/optimize              submit a study (OptimizeRequest JSON)
//	GET    /api/optimize              list studies (summaries)
//	GET    /api/optimize/{id}         one study's status (latest progress)
//	GET    /api/optimize/{id}/result  the completed StudyResult
//	GET    /api/optimize/{id}/stream  NDJSON: per-generation progress, then the result
//	POST   /api/optimize/{id}/cancel  cancel a running study

// OptimizeRequest is the POST /api/optimize body.
type OptimizeRequest struct {
	Name string `json:"name,omitempty"`
	// SpecName selects a built-in spec ("frontier" default,
	// "setonix-like"); Spec overrides it with a full inline system spec.
	SpecName string             `json:"spec_name,omitempty"`
	Spec     *config.SystemSpec `json:"spec,omitempty"`
	// Base is the operating point the study searches around and reports
	// its baseline from; omitted → a cooled one-day HPL run.
	Base *ScenarioRequest `json:"base,omitempty"`
	// Study is the search configuration: knobs, objectives, constraints,
	// population, generations, surrogate/UQ settings.
	Study optimize.StudySpec `json:"study"`
	// WarmStart loads the persisted surrogate fit for this (spec, search
	// space) from the durable store, when one exists.
	WarmStart bool `json:"warm_start,omitempty"`
}

// OptimizeResponse acknowledges a study submission.
type OptimizeResponse struct {
	ID          string `json:"id"`
	SpecHash    string `json:"spec_hash"`
	WarmStarted bool   `json:"warm_started,omitempty"`
}

// optimizeStreamEntry is one NDJSON line on the study stream: a
// per-generation progress snapshot while running, then a final line
// carrying the terminal state (and the result when the study completed).
type optimizeStreamEntry struct {
	Progress *optimize.Progress    `json:"progress,omitempty"`
	State    StudyState            `json:"state,omitempty"`
	Error    string                `json:"error,omitempty"`
	Result   *optimize.StudyResult `json:"result,omitempty"`
}

// defaultOptimizeBase is the base scenario studies search around when
// the request omits one: a cooled one-day HPL run at the default tick.
func defaultOptimizeBase() ScenarioRequest {
	return ScenarioRequest{
		Name:       "optimize-base",
		Workload:   "hpl",
		HorizonSec: 86400,
		TickSec:    15,
		Cooling:    true,
	}
}

func (s *Service) handleOptimizeSubmit(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var spec config.SystemSpec
	switch {
	case req.Spec != nil:
		spec = *req.Spec
	case req.SpecName == "" || req.SpecName == "frontier":
		spec = config.Frontier()
	case req.SpecName == "setonix-like":
		spec = config.SetonixLike()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown spec_name %q", req.SpecName))
		return
	}
	baseReq := req.Base
	if baseReq == nil {
		def := defaultOptimizeBase()
		baseReq = &def
	}
	st, err := s.SubmitStudy(spec, baseReq.Scenario(), req.Study, StudyOptions{
		Name:      req.Name,
		WarmStart: req.WarmStart,
	})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", strconv.Itoa(s.closedRetryAfterSec()))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := st.Status()
	writeJSON(w, http.StatusAccepted, OptimizeResponse{
		ID: st.ID(), SpecHash: status.SpecHash, WarmStarted: status.WarmStarted,
	})
}

func (s *Service) handleOptimizeList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"studies": s.ListStudies()})
}

func (s *Service) studyFor(w http.ResponseWriter, r *http.Request) (*Study, bool) {
	id := r.PathValue("id")
	st, ok := s.StudyByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no study %q", id))
		return nil, false
	}
	return st, true
}

func (s *Service) handleOptimizeStatus(w http.ResponseWriter, r *http.Request) {
	if st, ok := s.studyFor(w, r); ok {
		writeJSON(w, http.StatusOK, st.Status())
	}
}

func (s *Service) handleOptimizeCancel(w http.ResponseWriter, r *http.Request) {
	if st, ok := s.studyFor(w, r); ok {
		st.Cancel()
		writeJSON(w, http.StatusOK, st.Status())
	}
}

func (s *Service) handleOptimizeResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.studyFor(w, r)
	if !ok {
		return
	}
	status := st.Status()
	switch status.State {
	case StudyDone:
		writeJSON(w, http.StatusOK, st.Result())
	case StudyRunning:
		writeError(w, http.StatusConflict, fmt.Errorf("study %q still running", st.ID()))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("study %q %s: %s", st.ID(), status.State, status.Error))
	}
}

// handleOptimizeStream writes one NDJSON progress line per completed
// generation, flushing after each, then a terminal line with the final
// state (and the StudyResult when the study completed) — the live feed
// a CLI tails while the optimizer works.
func (s *Service) handleOptimizeStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.studyFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sent := 0
	for {
		changed := st.changed()
		progress := st.ProgressLog()
		for ; sent < len(progress); sent++ {
			p := progress[sent]
			if err := enc.Encode(optimizeStreamEntry{Progress: &p}); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-st.Done():
			// Drain any progress emitted between the snapshot and done.
			progress = st.ProgressLog()
			for ; sent < len(progress); sent++ {
				p := progress[sent]
				if err := enc.Encode(optimizeStreamEntry{Progress: &p}); err != nil {
					return
				}
			}
			status := st.Status()
			_ = enc.Encode(optimizeStreamEntry{
				State:  status.State,
				Error:  status.Error,
				Result: st.Result(),
			})
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
