package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/optimize"
	"exadigit/internal/store"
	"exadigit/internal/surrogate"
)

// quickStudy is a small real-twin study: a 3×10 grid over simulation
// tick and outdoor wet bulb, two objectives, sized to finish in a few
// twin evaluations per generation.
func quickStudy() optimize.StudySpec {
	return optimize.StudySpec{
		Knobs: []optimize.Knob{
			{Name: "scenario.tick_sec", Min: 15, Max: 45, Step: 15},
			{Name: "scenario.wetbulb_c", Min: 1, Max: 10, Step: 1},
		},
		Objectives: []optimize.Objective{
			{Metric: "energy_mwh"},
			{Metric: "throughput_per_hr", Maximize: true},
		},
		Population:  10,
		Generations: 2,
		PromoteTopK: 2,
		Seed:        7,
	}
}

func waitStudy(t *testing.T, st *Study) StudyStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	if err := st.Wait(ctx); err != nil {
		t.Fatalf("study %s did not finish: %v", st.ID(), err)
	}
	return st.Status()
}

// TestStudyEndToEnd: a study over the real twin completes, reports a
// twin-exact best and frontier, and persists its surrogate fit to the
// durable store. A cold re-run of the same study on the same service is
// then served entirely from cache with zero spec recompilations.
func TestStudyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 4, Store: st})
	base := synthScenario(1, 900)
	study := quickStudy()

	first, err := svc.SubmitStudy(config.Frontier(), base, study, StudyOptions{Name: "co-design"})
	if err != nil {
		t.Fatal(err)
	}
	status := waitStudy(t, first)
	if status.State != StudyDone {
		t.Fatalf("study state %s (%s)", status.State, status.Error)
	}
	res := first.Result()
	if res == nil || res.Best == nil || len(res.Frontier) == 0 {
		t.Fatalf("study finished without a best/frontier: %+v", res)
	}
	if res.TwinEvals == 0 || res.Generations != study.Generations {
		t.Fatalf("accounting: %+v", res)
	}
	if res.BaselineObjectives == nil {
		t.Fatal("baseline objectives missing")
	}
	for _, c := range res.Frontier {
		if c.Objectives["energy_mwh"] <= 0 {
			t.Fatalf("frontier member without twin-exact objectives: %+v", c)
		}
	}
	if status.Progress == nil || status.Progress.Generation != study.Generations-1 {
		t.Fatalf("status progress: %+v", status.Progress)
	}

	// The trained surrogate was persisted under the durable store.
	blob, err := st.GetBlob(optimizeModelBlobName(first.specHash, study))
	if err != nil {
		t.Fatalf("persisted model: %v", err)
	}
	var m surrogate.Model
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("persisted model decode: %v", err)
	}
	if !m.Trained() || m.Dims() != 2 {
		t.Fatalf("persisted model untrained or wrong dims: trained=%v dims=%d", m.Trained(), m.Dims())
	}

	// Cold re-run, same service: the driver is deterministic, so it
	// re-requests the exact same scenarios — every twin evaluation is a
	// cache hit and the compiled spec is reused (0 model rebuilds).
	buildsBefore := config.ModelBuilds()
	second, err := svc.SubmitStudy(config.Frontier(), base, study, StudyOptions{Name: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	if s2 := waitStudy(t, second); s2.State != StudyDone {
		t.Fatalf("re-run state %s (%s)", s2.State, s2.Error)
	}
	res2 := second.Result()
	if res2.TwinEvals != res.TwinEvals || res2.Screened != res.Screened || res2.Fallbacks != res.Fallbacks {
		t.Fatalf("re-run diverged: %d/%d/%d vs %d/%d/%d twin/screened/fallbacks",
			res2.TwinEvals, res2.Screened, res2.Fallbacks, res.TwinEvals, res.Screened, res.Fallbacks)
	}
	if res2.CachedEvals != res2.TwinEvals {
		t.Fatalf("re-run computed %d of %d evaluations instead of riding the cache",
			res2.TwinEvals-res2.CachedEvals, res2.TwinEvals)
	}
	if got := config.ModelBuilds() - buildsBefore; got != 0 {
		t.Fatalf("re-run rebuilt %d power models, want 0", got)
	}
	if res2.Best.Scalar != res.Best.Scalar {
		t.Fatalf("re-run best diverged: %v vs %v", res2.Best.Scalar, res.Best.Scalar)
	}

	// Warm start: a third study loads the persisted fit.
	third, err := svc.SubmitStudy(config.Frontier(), base, study, StudyOptions{Name: "warm-start", WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if s3 := waitStudy(t, third); s3.State != StudyDone || !s3.WarmStarted {
		t.Fatalf("warm-started study: state=%s warm=%v (%s)", s3.State, s3.WarmStarted, s3.Error)
	}
}

// TestStudyCancel: cancelling a running study terminates it with the
// cancelled state.
func TestStudyCancel(t *testing.T) {
	svc := New(Options{Workers: 2})
	study := quickStudy()
	study.Generations = 6
	st, err := svc.SubmitStudy(config.Frontier(), synthScenario(2, 1800), study, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Cancel()
	status := waitStudy(t, st)
	if status.State != StudyCancelled {
		t.Fatalf("state %s, want cancelled", status.State)
	}
	if _, ok := svc.StudyByID(st.ID()); !ok {
		t.Fatal("cancelled study dropped from registry")
	}
}

// TestStudyRejectsClosedService: a draining service refuses new studies.
func TestStudyRejectsClosedService(t *testing.T) {
	svc := New(Options{Workers: 1})
	svc.Close()
	if _, err := svc.SubmitStudy(config.Frontier(), synthScenario(3, 900), quickStudy(), StudyOptions{}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestStudyHTTPRoundTrip drives the whole HTTP surface: submit, list,
// status, NDJSON progress stream (progress lines then a terminal line
// carrying the result), and the result endpoint.
func TestStudyHTTPRoundTrip(t *testing.T) {
	svc := New(Options{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	study := quickStudy()
	study.Population = 8
	body, _ := json.Marshal(OptimizeRequest{
		Name: "http-study",
		Base: &ScenarioRequest{
			Name: "synth", Workload: "synthetic", HorizonSec: 900, TickSec: 15,
		},
		Study: study,
	})
	resp, err := http.Post(srv.URL+"/api/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var ack OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.ID == "" || ack.SpecHash == "" {
		t.Fatalf("ack: %+v", ack)
	}

	// The stream carries per-generation progress, then the result.
	stream, err := http.Get(srv.URL + "/api/optimize/" + ack.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var entries []optimizeStreamEntry
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var e optimizeStreamEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		entries = append(entries, e)
	}
	if len(entries) < study.Generations+1 {
		t.Fatalf("stream delivered %d entries, want >= %d", len(entries), study.Generations+1)
	}
	final := entries[len(entries)-1]
	if final.State != StudyDone || final.Result == nil || final.Result.Best == nil {
		t.Fatalf("final stream entry: %+v", final)
	}
	for _, e := range entries[:len(entries)-1] {
		if e.Progress == nil {
			t.Fatalf("non-final stream entry without progress: %+v", e)
		}
	}

	// Status, list, and result endpoints agree.
	resp, err = http.Get(srv.URL + "/api/optimize/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != StudyDone {
		t.Fatalf("status: %+v", status)
	}
	resp, err = http.Get(srv.URL + "/api/optimize")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Studies []StudyStatus `json:"studies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Studies) != 1 || list.Studies[0].ID != ack.ID {
		t.Fatalf("list: %+v", list)
	}
	resp, err = http.Get(srv.URL + "/api/optimize/" + ack.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result optimize.StudyResult
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Best == nil || len(result.Frontier) == 0 {
		t.Fatalf("result: %+v", result)
	}

	// Unknown study: 404.
	resp, err = http.Get(srv.URL + "/api/optimize/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown study: %d", resp.StatusCode)
	}
}

// TestStudyEvaluatorPerCandidateValidation: an invalid candidate plant
// becomes that candidate's infeasibility, not a study-fatal error.
func TestStudyEvaluatorPerCandidateValidation(t *testing.T) {
	svc := New(Options{Workers: 1})
	compiled, err := core.Compile(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	ev := &sweepEvaluator{svc: svc, spec: config.Frontier(), compiled: compiled, studyID: "opt-test"}
	bad := synthScenario(9, 900)
	bad.CoolingSpec = &config.CoolingSpec{NumCDUs: -1}
	good := synthScenario(9, 900)
	outs, err := ev.Evaluate(context.Background(), 0, []core.Scenario{bad, good})
	if err != nil {
		t.Fatalf("batch failed wholesale: %v", err)
	}
	if outs[0].Err == "" || outs[0].Report != nil {
		t.Fatalf("invalid candidate outcome: %+v", outs[0])
	}
	if outs[1].Err != "" || outs[1].Report == nil {
		t.Fatalf("valid candidate outcome: %+v", outs[1])
	}
}
