package service

import (
	"context"
	"reflect"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/store"
	"exadigit/internal/telemetry"
)

// TestKillRestartServesFromDisk is the durability acceptance test: a
// sweep is run against a store-backed service, the service is "killed"
// (abandoned), and a fresh Service over a fresh Open of the same
// directory re-serves every completed scenario from disk — with zero
// partition power-model rebuilds (the disk tier is checked before any
// Twin is constructed) and bit-identical reports.
func TestKillRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Options{Workers: 4, Store: st1})
	const n = 8
	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(7000+i), 1800)
	}
	spec := config.Frontier()
	sw1, err := svc1.Submit(spec, scenarios, SweepOptions{Name: "before-kill"})
	if err != nil {
		t.Fatal(err)
	}
	first := waitSweep(t, sw1)
	if first.Done != n {
		t.Fatalf("seed sweep: %+v", first)
	}
	wantReports := sw1.Results()

	// "Kill" svc1 (drop it) and restart on the same directory: the index
	// is rebuilt from disk, the in-memory cache starts cold.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != n {
		t.Fatalf("restarted store indexed %d entries, want %d", st2.Len(), n)
	}
	svc2 := New(Options{Workers: 4, Store: st2})

	buildsBefore := config.ModelBuilds()
	sw2, err := svc2.Submit(spec, scenarios, SweepOptions{Name: "after-restart"})
	if err != nil {
		t.Fatal(err)
	}
	second := waitSweep(t, sw2)
	if second.Cached != n {
		t.Fatalf("restarted service recomputed: %+v", second)
	}
	if got := config.ModelBuilds() - buildsBefore; got != 0 {
		t.Fatalf("disk-warm sweep rebuilt %d power models, want 0", got)
	}
	if m := st2.Stats(); m.Hits != n {
		t.Fatalf("store hits = %d, want %d (metrics %+v)", m.Hits, n, m)
	}
	got := sw2.Results()
	for i := range got {
		if got[i] == nil || got[i].Report == nil {
			t.Fatalf("scenario %d: no disk-served result", i)
		}
		if !reflect.DeepEqual(got[i].Report, wantReports[i].Report) {
			t.Fatalf("scenario %d: disk-served report differs\n got %+v\nwant %+v",
				i, got[i].Report, wantReports[i].Report)
		}
		if got[i].WallSec != wantReports[i].WallSec {
			t.Fatalf("scenario %d: wall time not preserved", i)
		}
	}
	// A second restart sweep is served from memory (no extra disk reads).
	sw3, err := svc2.Submit(spec, scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw3)
	if m := st2.Stats(); m.Hits != n {
		t.Fatalf("memory tier bypassed: store hits rose to %d", m.Hits)
	}
}

// TestCancelReleasesSweepResources pins the cancel-release fix: a
// cancelled sweep promptly drops its references to the scenario slice
// (which can pin a multi-gigabyte replay dataset) and the compiled spec,
// instead of pinning both until the registry prunes it at process-exit
// scale. Status and results stay recallable.
func TestCancelReleasesSweepResources(t *testing.T) {
	svc := New(Options{Workers: 1})
	// A replay scenario whose dataset stands in for the big pinned input.
	ds := &telemetry.Dataset{
		Epoch:       "pin-check",
		SeriesDtSec: 15,
		Jobs: []telemetry.JobRecord{
			{JobID: 1, NodeCount: 64, WallTime: 86400, CPUPowerW: []float64{200, 210}},
		},
	}
	scenarios := []core.Scenario{
		{Name: "replay-day", Workload: core.WorkloadReplay, HorizonSec: 86400,
			TickSec: 15, Dataset: ds, NoExport: true},
		synthScenario(7101, 86400),
		synthScenario(7102, 86400),
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatalf("cancelled sweep did not finish promptly: %v", err)
	}
	sw.mu.Lock()
	scensReleased := sw.scenarios == nil
	compiledReleased := sw.compiled == nil
	sw.mu.Unlock()
	if !scensReleased {
		t.Error("cancelled sweep still pins its scenario slice (and replay dataset)")
	}
	if !compiledReleased {
		t.Error("cancelled sweep still pins its compiled spec")
	}
	// The sweep stays observable after release.
	st := sw.Status()
	if st.Total != len(scenarios) || !st.Finished {
		t.Fatalf("released sweep lost its status: %+v", st)
	}
	if got := len(sw.Results()); got != len(scenarios) {
		t.Fatalf("released sweep lost its results slice: %d", got)
	}
	if hashes := sw.ScenarioHashes(); len(hashes) != len(scenarios) {
		t.Fatalf("released sweep lost its hashes: %d", len(hashes))
	}
	if fm := svc.FailureMetricsSnapshot(); fm.Pending != 0 {
		t.Fatalf("cancelled sweep leaked queue reservations: %+v", fm)
	}
}
