package service

// The dispatch seam. A Service normally computes cache-missing scenarios
// on its own worker pool; installing a ScenarioRunner (Options.Runner)
// replaces that compute tier with an external one — the cluster
// coordinator installs its worker client pool here, so the whole sweep
// lifecycle (admission, single-flight, retries, spans, streaming) stays
// in this package while the simulation itself happens on another node.

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/job"
)

// RunRequest identifies one scenario attempt to a ScenarioRunner. The
// hashes are the coordinator's content-addressed cache key halves;
// runners that re-submit over the sweep HTTP API should verify the
// remote side derives the same scenario hash (a mismatch means the wire
// round-trip was lossy and shared-store dedup would silently break).
type RunRequest struct {
	Spec         config.SystemSpec
	SpecHash     string
	Scenario     core.Scenario
	ScenarioHash string
	// Index is the scenario's position within its sweep; Attempt is the
	// 1-based service retry attempt dispatching this request.
	Index   int
	Attempt int
}

// ScenarioRunner computes one scenario somewhere other than the local
// worker pool. Errors are retried under the sweep's normal attempt
// budget; a returned context error cancels the scenario like a local
// cancellation would.
type ScenarioRunner interface {
	RunScenario(ctx context.Context, req RunRequest) (*core.Result, error)
}

// ScenarioRequestFrom converts a core scenario back to its wire form —
// the inverse of ScenarioRequest.Scenario, used by the cluster client to
// re-submit a coordinator's scenario to a worker. The round trip must be
// hash-lossless (HashScenario of the reconstructed scenario equals the
// original's), which is what keeps the shared store's dedup key stable
// across nodes. Scenarios that cannot cross the wire — replay datasets,
// telemetry writers — are rejected.
func ScenarioRequestFrom(sc core.Scenario) (ScenarioRequest, error) {
	if sc.Dataset != nil || sc.Workload == core.WorkloadReplay {
		return ScenarioRequest{}, fmt.Errorf("service: replay scenarios cannot be dispatched over the wire")
	}
	if sc.TelemetryTo != nil {
		return ScenarioRequest{}, fmt.Errorf("service: scenarios with telemetry writers cannot be dispatched over the wire")
	}
	noExport, noHistory := sc.NoExport, sc.NoHistory
	r := ScenarioRequest{
		Name:             sc.Name,
		Workload:         string(sc.Workload),
		HorizonSec:       sc.HorizonSec,
		TickSec:          sc.TickSec,
		Policy:           sc.Policy,
		Cooling:          sc.Cooling,
		CoolingSpec:      sc.CoolingSpec,
		PowerMode:        sc.PowerMode,
		Partitions:       sc.Partitions,
		BenchmarkWallSec: sc.BenchmarkWallSec,
		WetBulbC:         sc.WetBulbC,
		WeatherStart:     sc.WeatherStart,
		WeatherSeed:      sc.WeatherSeed,
		Engine:           sc.Engine,
		NoExport:         &noExport,
		NoHistory:        &noHistory,
	}
	if sc.Generator != (job.GeneratorConfig{}) {
		g := sc.Generator
		r.Generator = &g
	}
	return r, nil
}

// leaseOwnerID derives this service's cross-node lease identity:
// host + pid disambiguate nodes and processes, the random suffix
// disambiguates services within one process (tests run several).
func leaseOwnerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	var b [4]byte
	_, _ = cryptorand.Read(b[:])
	return fmt.Sprintf("%s-%d-%s", host, os.Getpid(), hex.EncodeToString(b[:]))
}

// drainTau is the EWMA time constant of the queue drain-rate estimate —
// long enough to smooth per-scenario noise, short enough that an
// operator-visible slowdown moves the Retry-After hint within a minute.
const drainTau = 30 * time.Second

// drainRate estimates the service's scenario completion rate as an
// irregular-interval EWMA. Each release of queue capacity feeds it; the
// saturated-queue Retry-After hint divides the pending count by this
// rate, so the hint tracks what the service is actually draining instead
// of a fixed per-worker guess.
type drainRate struct {
	mu   sync.Mutex
	rate float64 // scenarios/sec
	last time.Time
}

func (d *drainRate) note(n int, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last.IsZero() {
		d.last = now
		return
	}
	dt := now.Sub(d.last).Seconds()
	if dt <= 0 {
		// Same-instant completions: treat as an impulse. alpha*sample
		// degenerates to n/tau, so the contribution stays bounded.
		dt = 1e-9
	}
	sample := float64(n) / dt
	alpha := 1 - math.Exp(-dt/drainTau.Seconds())
	d.rate += alpha * (sample - d.rate)
	d.last = now
}

func (d *drainRate) value() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rate
}

// retryAfterSec derives the saturated-queue Retry-After hint from the
// observed drain rate: pending scenarios divided by scenarios/sec, with
// ±25% jitter so a burst of throttled clients does not resubmit in
// lockstep, clamped to a sane header range. Before any drain has been
// observed it falls back to assuming ~1 scenario/sec/worker.
func (s *Service) retryAfterSec() int {
	rate := s.drain.value()
	if rate <= 0 {
		rate = float64(s.workers)
	}
	sec := float64(s.pending.Load()) / rate
	sec *= 0.75 + 0.5*rand.Float64()
	switch {
	case sec < 1:
		return 1
	case sec > 60:
		return 60
	}
	return int(sec)
}
