// Package service turns the digital twin into a long-running
// scenario-sweep service — the paper's twin-as-a-service deployment
// (§III-B6), where the REST backend runs each what-if experiment as its
// own worker. A Service owns a bounded simulation worker pool, compiles
// each submitted SystemSpec once (power models + cooling FMU design,
// shared read-only by every scenario of every sweep against that spec),
// deduplicates work through a content-addressed result cache keyed by
// (spec hash, scenario hash), and exposes submit/status/cancel plus
// streaming results over HTTP (http.go).
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/fmu"
	"exadigit/internal/httpmw"
	"exadigit/internal/obs"
	"exadigit/internal/store"
)

// Options configures a Service.
type Options struct {
	// Workers bounds concurrently running simulations across all sweeps
	// (0 → runtime.NumCPU()).
	Workers int
	// CacheCap bounds the number of cached scenario results; the oldest
	// completed entries are evicted first (0 → 1024).
	CacheCap int
	// CacheMaxBytes bounds the cache by approximate resident size —
	// the primary production bound, since results vary from a bare
	// report (~2 KB) to multi-day telemetry exports (megabytes). Each
	// result's size is estimated at insert; the oldest completed entries
	// are evicted until the total fits (0 → 256 MiB).
	CacheMaxBytes int64
	// MaxSweeps bounds how many finished sweeps are retained for status
	// and result recall; beyond it the oldest finished sweeps (and the
	// results they pin) are dropped so a long-running server's memory
	// stays bounded (0 → 256).
	MaxSweeps int
	// Store layers a durable on-disk result store under the in-memory
	// cache: lookups go memory → disk → compute (single-flight preserved
	// across all tiers), and every computed result is persisted, so a
	// killed-and-restarted service re-serves finished sweeps mostly warm.
	// nil keeps the service memory-only.
	Store *store.Store
	// ScenarioTimeout bounds each scenario attempt's wall time, enforced
	// via context so a runaway attempt aborts at its next tick boundary
	// (0 → no deadline). Overridable per sweep.
	ScenarioTimeout time.Duration
	// MaxAttempts is how many times a failing scenario is tried before
	// its failure is reported as permanent. Panics, deadline overruns,
	// and simulation errors all retry with capped exponential backoff +
	// jitter; sweep cancellation never retries (0 → 3).
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the backoff between
	// attempts: base doubles per attempt, capped at max, ±50% jitter
	// (0 → 100ms and 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// MaxPending bounds the queued+running scenario count across all
	// sweeps — the admission control that makes an overloaded service
	// refuse work (Submit returns ErrSaturated, HTTP 429 + Retry-After)
	// instead of accepting sweeps it will never finish (0 → 4096).
	MaxPending int
	// Registry receives the service's metric families (cache, failure,
	// store, HTTP, model/FMU build counters) for the Prometheus /metrics
	// exposition. nil → a private registry, still reachable via
	// Service.Registry(). One Service per registry: the service owns the
	// exadigit_sweep_*/exadigit_cache_* family names it registers.
	Registry *obs.Registry
	// TraceCap bounds the per-scenario lifecycle span ring buffer served
	// at /api/sweeps/trace (0 → 1024).
	TraceCap int
	// Runner, when non-nil, replaces local simulation as the compute
	// tier: each cache-missing scenario is dispatched through it (the
	// cluster coordinator installs its worker client pool here). The
	// memory cache and single-flight still apply, and the durable store
	// is still read for hits — but computed results are NOT written back
	// (the runner's workers own persistence, so a shared store counts
	// each key's Put exactly once). Scenarios that cannot cross the wire
	// are rejected at Submit (replay datasets) or computed locally
	// (telemetry writers).
	Runner ScenarioRunner
	// LeaseTTL enables cross-node single-flight when several services
	// share one Store directory: before computing a key locally, the
	// service acquires a time-bounded lease on it and other nodes wait
	// for the holder's Put instead of duplicating the run. Size it for
	// the worst-case scenario compute; a holder renews every TTL/3, and
	// a dead holder's lease is stolen after expiry. 0 disables leasing.
	// Ignored when Runner is set — the coordinator must not lease before
	// remote dispatch, or it would deadlock against the worker that
	// leases the same key to compute it.
	LeaseTTL time.Duration
}

// Service is the sweep server. Create with New; it has no background
// goroutines of its own until sweeps are submitted.
type Service struct {
	workers   int
	maxSweeps int
	slots     chan struct{} // global simulation-worker pool
	cache     *resultCache
	store     *store.Store   // durable tier; nil → memory-only
	runner    ScenarioRunner // remote compute tier; nil → local pool
	leaseTTL  time.Duration  // cross-node single-flight; 0 → no leasing
	owner     string         // this service's lease identity
	logf      httpmw.Logf
	metrics   *httpmw.Metrics
	reg       *obs.Registry
	tracer    *obs.Tracer

	// Failure-domain configuration (service-wide defaults; sweeps may
	// override timeout and attempts).
	scenarioTimeout time.Duration
	maxAttempts     int
	retryBase       time.Duration
	retryMax        time.Duration
	maxPending      int

	// Cache and failure/recovery accounting. These registry instruments
	// ARE the counters — FailureMetricsSnapshot, CacheMetricsSnapshot,
	// and the /metrics exposition all read the same storage.
	hits       *obs.Counter
	misses     *obs.Counter
	retries    *obs.Counter
	panics     *obs.Counter
	timeouts   *obs.Counter
	rejections *obs.Counter
	scenRate   *obs.Gauge   // scenarios/sec of the most recently finished sweep
	pending    atomic.Int64 // queued+running scenarios across all sweeps (CAS admission)
	drain      drainRate    // completion-rate EWMA behind Retry-After
	drainBy    atomic.Int64 // shutdown drain deadline (unixnano; 0 = none) behind the 503 Retry-After

	// Journal-recovery and idempotency accounting (journal.go).
	recAdopted  *obs.Counter
	recFinished *obs.Counter
	requeued    *obs.Counter
	idemHits    *obs.Counter

	// Optimizer accounting (optimize.go).
	optEvals       *obs.CounterVec
	optFallbacks   *obs.Counter
	optGenerations *obs.Counter
	optFrontier    *obs.Gauge

	faults faultHolder // test-only chaos hook

	mu        sync.Mutex
	closed    bool
	specs     map[string]*core.CompiledSpec // spec hash → shared compiled spec
	specOrder []string                      // spec hashes, oldest first
	sweeps    map[string]*Sweep
	order     []string          // sweep ids in submission order
	keys      map[string]string // idempotency key → sweep id

	// Optimization studies (optimize.go).
	studies    map[string]*Study
	studyOrder []string // study ids in submission order
}

// maxCompiledSpecs bounds the compiled-spec cache: HTTP accepts
// arbitrary inline specs, so distinct hashes must not pin models
// forever. Evicted specs keep working for sweeps that hold them; a
// re-submission simply recompiles.
const maxCompiledSpecs = 64

// New builds a Service.
func New(opts Options) *Service {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.CacheCap <= 0 {
		opts.CacheCap = 1024
	}
	if opts.CacheMaxBytes <= 0 {
		opts.CacheMaxBytes = 256 << 20
	}
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 256
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 100 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = 5 * time.Second
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 4096
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Service{
		workers:         opts.Workers,
		maxSweeps:       opts.MaxSweeps,
		slots:           make(chan struct{}, opts.Workers),
		cache:           newResultCache(opts.CacheCap, opts.CacheMaxBytes),
		store:           opts.Store,
		runner:          opts.Runner,
		leaseTTL:        opts.LeaseTTL,
		owner:           leaseOwnerID(),
		metrics:         &httpmw.Metrics{},
		reg:             reg,
		tracer:          obs.NewTracer(opts.TraceCap),
		scenarioTimeout: opts.ScenarioTimeout,
		maxAttempts:     opts.MaxAttempts,
		retryBase:       opts.RetryBaseDelay,
		retryMax:        opts.RetryMaxDelay,
		maxPending:      opts.MaxPending,
		specs:           make(map[string]*core.CompiledSpec),
		sweeps:          make(map[string]*Sweep),
		keys:            make(map[string]string),
		studies:         make(map[string]*Study),
	}
	s.registerMetrics()
	return s
}

// registerMetrics attaches every service counter to the registry. The
// hot-path counters (cache hits/misses, retries, panics, timeouts,
// rejections) are registry instruments written directly by the workers;
// owner-held state (pending, cache occupancy, store counters, global
// model-build counters) is collected at scrape time. The JSON snapshot
// endpoints read the same storage, so the two views cannot drift.
func (s *Service) registerMetrics() {
	reg := s.reg
	s.hits = reg.Counter("exadigit_cache_hits_total",
		"Scenarios served from a cache tier (memory or durable store).")
	s.misses = reg.Counter("exadigit_cache_misses_total",
		"Scenario simulation attempts started (cache misses).")
	s.retries = reg.Counter("exadigit_sweep_retries_total",
		"Scenario re-attempts after a transient failure.")
	s.panics = reg.Counter("exadigit_sweep_panics_recovered_total",
		"Worker panics recovered into per-scenario failures.")
	s.timeouts = reg.Counter("exadigit_sweep_timeouts_total",
		"Scenario attempts that exceeded their deadline.")
	s.rejections = reg.Counter("exadigit_sweep_queue_rejections_total",
		"Sweep submissions refused because the queue was saturated.")
	s.scenRate = reg.Gauge("exadigit_sweep_scenarios_per_second",
		"Throughput of the most recently finished sweep.")
	s.recAdopted = reg.Counter("exadigit_sweep_recovered_total",
		"Incomplete sweeps re-adopted from the durable journal at startup.")
	s.recFinished = reg.Counter("exadigit_sweep_recovered_finished_total",
		"Finished sweeps re-registered from the journal for status serving.")
	s.requeued = reg.Counter("exadigit_sweep_requeued_scenarios_total",
		"Scenarios re-enqueued by journal recovery (non-terminal at the crash).")
	s.idemHits = reg.Counter("exadigit_sweep_idempotent_hits_total",
		"Submissions deduplicated onto an existing sweep by idempotency key.")
	reg.GaugeFunc("exadigit_sweep_pending_scenarios",
		"Queued+running scenarios across all sweeps.",
		func() float64 { return float64(s.pending.Load()) })
	reg.GaugeFunc("exadigit_sweep_max_pending",
		"Admission bound on pending scenarios.",
		func() float64 { return float64(s.maxPending) })
	reg.GaugeFunc("exadigit_sweep_workers",
		"Simulation worker-pool capacity.",
		func() float64 { return float64(s.workers) })
	reg.CounterFunc("exadigit_cache_evictions_total",
		"Completed results dropped by the cache capacity bounds.",
		func() float64 {
			ev, _, _, _, _ := s.cache.stats()
			return float64(ev)
		})
	reg.GaugeFunc("exadigit_cache_entries",
		"Live result-cache entries.",
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("exadigit_cache_bytes",
		"Approximate resident size of cached results.",
		func() float64 {
			_, _, _, bytes, _ := s.cache.stats()
			return float64(bytes)
		})
	reg.GaugeFunc("exadigit_cache_capacity_bytes",
		"Byte bound the cache evicts against.",
		func() float64 {
			_, _, _, _, maxBytes := s.cache.stats()
			return float64(maxBytes)
		})
	reg.CounterFunc("exadigit_model_builds_total",
		"Partition power models built process-wide (spec compilations).",
		func() float64 { return float64(config.ModelBuilds()) })
	reg.CounterFunc("exadigit_fmu_description_builds_total",
		"Cooling FMU model descriptions built process-wide.",
		func() float64 { return float64(fmu.DescriptionBuilds()) })
	reg.CounterFunc("exadigit_trace_spans_total",
		"Scenario lifecycle spans emitted.",
		func() float64 { return float64(s.tracer.Total()) })
	if st := s.store; st != nil {
		reg.VecFunc(obs.KindCounter, "exadigit_store_ops_total",
			"Durable result-store operations by kind.",
			[]string{"op"},
			func(emit func([]string, float64)) {
				m := st.Stats()
				emit([]string{"hit"}, float64(m.Hits))
				emit([]string{"miss"}, float64(m.Misses))
				emit([]string{"put"}, float64(m.Puts))
				emit([]string{"put_error"}, float64(m.PutErrors))
				emit([]string{"corrupt_quarantined"}, float64(m.CorruptQuarantined))
				emit([]string{"quarantine_purged"}, float64(m.QuarantinePurged))
				emit([]string{"lease_acquired"}, float64(m.LeasesAcquired))
				emit([]string{"lease_wait"}, float64(m.LeaseWaits))
				emit([]string{"lease_steal"}, float64(m.LeaseSteals))
				emit([]string{"journal_create"}, float64(m.JournalCreates))
				emit([]string{"journal_append"}, float64(m.JournalAppends))
				emit([]string{"journal_error"}, float64(m.JournalErrors))
			})
		reg.GaugeFunc("exadigit_store_entries",
			"Results resident in the durable store.",
			func() float64 { return float64(st.Stats().Entries) })
		reg.GaugeFunc("exadigit_store_bytes",
			"Bytes resident in the durable store.",
			func() float64 { return float64(st.Stats().Bytes) })
	}
	s.registerOptimizeMetrics()
	s.metrics.Register(reg, "sweeps")
}

// Registry returns the metric registry the service reports into — mount
// Registry().Handler() as /metrics.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Tracer returns the per-scenario lifecycle tracer (served at
// /api/sweeps/trace; attach an NDJSON file sink via Tracer().SetSink).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Summary renders the service counters as one log line — the periodic
// metrics heartbeat the server emits alongside the HTTP summary.
func (s *Service) Summary() string {
	f := s.FailureMetricsSnapshot()
	c := s.CacheMetricsSnapshot()
	return fmt.Sprintf("pending=%d hits=%d misses=%d evictions=%d cache_entries=%d cache_mb=%.1f retries=%d panics=%d timeouts=%d rejections=%d spans=%d",
		f.Pending, c.Hits, c.Misses, c.Evictions, c.Entries, float64(c.Bytes)/(1<<20),
		f.Retries, f.PanicsRecovered, f.Timeouts, f.QueueRejections, s.tracer.Total())
}

// Store returns the durable result store, or nil when memory-only.
func (s *Service) Store() *store.Store { return s.store }

// StoreMetricsSnapshot returns the durable store's counters; the second
// return is false when no store is configured.
func (s *Service) StoreMetricsSnapshot() (store.Metrics, bool) {
	if s.store == nil {
		return store.Metrics{}, false
	}
	return s.store.Stats(), true
}

// Workers returns the pool capacity.
func (s *Service) Workers() int { return s.workers }

// SetLogf enables request logging through the shared middleware stack
// (log.Printf-shaped; nil keeps logging off). Call before Handler.
func (s *Service) SetLogf(logf httpmw.Logf) { s.logf = logf }

// Metrics exposes the HTTP middleware counters.
func (s *Service) Metrics() *httpmw.Metrics { return s.metrics }

// CacheStats reports result-cache effectiveness: served-from-cache
// scenario count, simulated count, and live cached entries.
func (s *Service) CacheStats() (hits, misses uint64, entries int) {
	return s.hits.Value(), s.misses.Value(), s.cache.len()
}

// CacheMetrics is the full result-cache accounting served on
// /api/sweeps/metrics — the observability groundwork for the planned
// byte-bounded persistent cache (eviction pressure tells an operator
// whether the count bound is the limiting resource).
type CacheMetrics struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	// Bytes is the approximate resident size of the cached results;
	// CapacityBytes is the byte bound evictions enforce.
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// CacheMetricsSnapshot returns the current result-cache counters.
func (s *Service) CacheMetricsSnapshot() CacheMetrics {
	ev, entries, capacity, bytes, maxBytes := s.cache.stats()
	return CacheMetrics{
		Hits:          s.hits.Value(),
		Misses:        s.misses.Value(),
		Evictions:     ev,
		Entries:       entries,
		Capacity:      capacity,
		Bytes:         bytes,
		CapacityBytes: maxBytes,
	}
}

// compiledFor returns the shared CompiledSpec for the spec, compiling it
// on first submission. Sweeps of the same spec — byte-identical after
// canonical JSON encoding — share one compiled instance. The spec is
// compiled before the registry lookup so the map key is the hash the
// CompiledSpec itself carries (one hash computation, no second registry
// read that a concurrent preset re-registration could skew).
func (s *Service) compiledFor(spec config.SystemSpec) (*core.CompiledSpec, error) {
	cs, err := core.Compile(spec)
	if err != nil {
		return nil, err
	}
	hash := cs.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.specs[hash]; ok {
		return existing, nil
	}
	s.specs[hash] = cs
	s.specOrder = append(s.specOrder, hash)
	for len(s.specOrder) > maxCompiledSpecs {
		delete(s.specs, s.specOrder[0])
		s.specOrder = s.specOrder[1:]
	}
	return cs, nil
}

// SweepOptions parameterizes one submission.
type SweepOptions struct {
	// Name labels the sweep in listings.
	Name string
	// MaxConcurrent caps this sweep's in-flight scenarios on top of the
	// global pool (0 → no per-sweep cap).
	MaxConcurrent int
	// ScenarioTimeout overrides the service's per-attempt deadline for
	// this sweep (0 → Options.ScenarioTimeout).
	ScenarioTimeout time.Duration
	// MaxAttempts overrides the service's retry budget for this sweep
	// (0 → Options.MaxAttempts).
	MaxAttempts int
	// Key is a client-supplied idempotency key: a submission carrying a
	// key already bound to a live or journaled sweep returns that sweep
	// instead of creating (and computing) a new one. Keys survive
	// restarts via the durable journal.
	Key string
	// Ephemeral skips the durable journal: the sweep will not be
	// re-adopted after a restart. Cluster shard dispatches set this —
	// durability belongs to the coordinator that owns the parent sweep,
	// and a worker re-adopting a half-done shard would race the
	// coordinator's own re-dispatch of the same scenarios.
	Ephemeral bool
}

// ScenarioState is the lifecycle of one scenario within a sweep.
type ScenarioState string

// Scenario states.
const (
	StateQueued    ScenarioState = "queued"
	StateRunning   ScenarioState = "running"
	StateDone      ScenarioState = "done"
	StateCached    ScenarioState = "cached"
	StateFailed    ScenarioState = "failed"
	StateCancelled ScenarioState = "cancelled"
)

// ScenarioStatus is the observable state of one scenario of a sweep.
type ScenarioStatus struct {
	Index    int           `json:"index"`
	Name     string        `json:"name"`
	Hash     string        `json:"scenario_hash"`
	State    ScenarioState `json:"state"`
	Error    string        `json:"error,omitempty"`
	WallSec  float64       `json:"wall_sec,omitempty"`
	CacheHit bool          `json:"cache_hit,omitempty"`
	// Attempts is how many simulation attempts the scenario consumed
	// (>1 means transient failures were retried; 0 for scenarios served
	// from a cache tier or never dispatched).
	Attempts int `json:"attempts,omitempty"`
}

// Terminal reports whether the scenario has reached a final state.
func (st ScenarioStatus) Terminal() bool {
	switch st.State {
	case StateDone, StateCached, StateFailed, StateCancelled:
		return true
	}
	return false
}

// SweepStatus is a point-in-time snapshot of a sweep.
type SweepStatus struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	SpecHash  string    `json:"spec_hash"`
	CreatedAt time.Time `json:"created_at"`
	Total     int       `json:"total"`
	Queued    int       `json:"queued"`
	Running   int       `json:"running"`
	Done      int       `json:"done"`
	Cached    int       `json:"cached"`
	Failed    int       `json:"failed"`
	Cancelled int       `json:"cancelled"`
	Finished  bool      `json:"finished"`
	// Recovered marks a sweep reconstructed from the durable journal
	// after a restart; Key echoes its idempotency key when one was set.
	Recovered bool             `json:"recovered,omitempty"`
	Key       string           `json:"sweep_key,omitempty"`
	Scenarios []ScenarioStatus `json:"scenarios,omitempty"`
}

// Sweep is one submitted battery of scenarios working through the pool.
type Sweep struct {
	id         string
	name       string
	spec       config.SystemSpec // retained for remote dispatch (RunRequest.Spec)
	specHash   string
	createdAt  time.Time
	compileSec float64            // spec-compile wall time, stamped on every span
	compiled   *core.CompiledSpec // released when the sweep finishes
	scenarios  []core.Scenario    // released when the sweep finishes
	hashes     []string
	spans      []spanState // per-scenario lifecycle accounting
	svc        *Service
	key        string              // idempotency key ("" = none)
	recovered  bool                // reconstructed from the journal after a restart
	journal    *store.SweepJournal // durable manifest + terminal records; nil = not journaled

	timeout     time.Duration // per-attempt deadline (0 → none)
	maxAttempts int

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	statuses []ScenarioStatus
	results  []*core.Result
	notify   chan struct{} // closed and replaced on every state change
	done     chan struct{} // closed when every scenario is terminal
}

// Cache tiers a scenario span reports (obs.Span.CacheTier).
const (
	tierMemory  = "memory"
	tierDisk    = "disk"
	tierCompute = "compute"
	tierNone    = "none"
	// tierJournal marks a scenario whose terminal state was restored
	// from the sweep journal at recovery — neither recomputed nor
	// re-read, just trusted (the result store holds its entry).
	tierJournal = "journal"
)

// spanState accumulates one scenario's lifecycle timings until the
// terminal state emits them as an obs.Span.
type spanState struct {
	mu       sync.Mutex
	queued   bool    // queueSec recorded (first attempt got a slot)
	queueSec float64 // submit → first worker slot
	storeSec float64 // durable-store persist time (leader only)
	attempts []obs.AttemptSpan
}

// firstSlot records the submit→first-slot queue wait once.
func (sp *spanState) firstSlot(since time.Time) {
	sp.mu.Lock()
	if !sp.queued {
		sp.queued = true
		sp.queueSec = time.Since(since).Seconds()
	}
	sp.mu.Unlock()
}

func (sp *spanState) addAttempt(a obs.AttemptSpan) {
	sp.mu.Lock()
	sp.attempts = append(sp.attempts, a)
	sp.mu.Unlock()
}

func (sp *spanState) setStoreSec(sec float64) {
	sp.mu.Lock()
	sp.storeSec = sec
	sp.mu.Unlock()
}

// emitSpan publishes scenario i's lifecycle span to the service tracer.
// Called exactly once per scenario, at its terminal state.
func (sw *Sweep) emitSpan(i int, st ScenarioStatus, tier string) {
	sp := &sw.spans[i]
	sp.mu.Lock()
	span := obs.Span{
		Time:          time.Now(),
		Sweep:         sw.id,
		Index:         i,
		Scenario:      st.Name,
		SpecHash:      sw.specHash,
		ScenarioHash:  st.Hash,
		State:         string(st.State),
		CacheTier:     tier,
		Error:         st.Error,
		Recovered:     sw.recovered,
		CompileSec:    sw.compileSec,
		QueueSec:      sp.queueSec,
		TotalSec:      time.Since(sw.createdAt).Seconds(),
		StoreWriteSec: sp.storeSec,
		Attempts:      sp.attempts,
	}
	if !sp.queued {
		// No attempt ever got a slot: the whole lifetime was queueing.
		span.QueueSec = span.TotalSec
	}
	sp.mu.Unlock()
	sw.svc.tracer.Emit(span)
}

// Submit registers a sweep and starts working it asynchronously through
// the pool. The returned Sweep is immediately observable via Status,
// Results, and Done.
func (s *Service) Submit(spec config.SystemSpec, scenarios []core.Scenario, opts SweepOptions) (*Sweep, error) {
	sw, _, err := s.SubmitIdempotent(spec, scenarios, opts)
	return sw, err
}

// SubmitIdempotent is Submit with idempotency-key deduplication made
// observable: when opts.Key is already bound to a sweep — live, or
// journaled and recovered after a restart — that sweep is returned with
// existing=true and nothing is admitted or computed. The dedup is
// key-based only; the caller owns keeping (key → scenarios) stable.
func (s *Service) SubmitIdempotent(spec config.SystemSpec, scenarios []core.Scenario, opts SweepOptions) (sw *Sweep, existing bool, err error) {
	if prev, ok := s.sweepForKey(opts.Key); ok {
		return prev, true, nil
	}
	if len(scenarios) == 0 {
		return nil, false, fmt.Errorf("service: sweep needs at least one scenario")
	}
	compileStart := time.Now()
	compiled, err := s.compiledFor(spec)
	if err != nil {
		return nil, false, err
	}
	compileSec := time.Since(compileStart).Seconds()
	hashes := make([]string, len(scenarios))
	for i, sc := range scenarios {
		if hashes[i], err = HashScenario(sc); err != nil {
			return nil, false, fmt.Errorf("service: scenario %d: %w", i, err)
		}
		// Per-partition workload lists must cover the spec's partitions,
		// and replay — programmatic-only, never valid per partition — is
		// knowable now; catching both here fails the submission instead
		// of a worker mid-sweep.
		if n := len(sc.Partitions); n != 0 && n != len(spec.Partitions) {
			return nil, false, fmt.Errorf("service: scenario %d: %d partition workloads for a %d-partition spec",
				i, n, len(spec.Partitions))
		}
		for p := range sc.Partitions {
			if sc.Partitions[p].Workload == core.WorkloadReplay {
				return nil, false, fmt.Errorf("service: scenario %d: partition %d: replay is not a per-partition workload", i, p)
			}
		}
		// A coordinator cannot ship replay datasets to a remote worker
		// (they are programmatic-only and never cross the wire), so the
		// rejection belongs here, not mid-sweep on a worker.
		if s.runner != nil && (sc.Dataset != nil || sc.Workload == core.WorkloadReplay) {
			return nil, false, fmt.Errorf("service: scenario %d: replay scenarios cannot be dispatched to remote workers", i)
		}
		// Resolve each cooled scenario's plant design up front (they are
		// cached and shared with the run), so an invalid or infeasible
		// CoolingSpec fails the submission instead of a worker mid-sweep.
		if sc.CoolingSpec != nil {
			if err := sc.CoolingSpec.Validate(); err != nil {
				return nil, false, fmt.Errorf("service: scenario %d: %w", i, err)
			}
			if _, err := compiled.CoolingDesignFor(*sc.CoolingSpec); err != nil {
				return nil, false, fmt.Errorf("service: scenario %d: %w", i, err)
			}
		} else if sc.Cooling {
			if _, err := compiled.CoolingDesign(); err != nil {
				return nil, false, fmt.Errorf("service: scenario %d: %w", i, err)
			}
		}
	}
	// Admission control: an overloaded queue refuses the sweep up front
	// (ErrSaturated → HTTP 429) rather than accepting scenarios it will
	// not reach for a long time. The reservation is released per scenario
	// as each reaches a terminal state.
	if err := s.admit(len(scenarios)); err != nil {
		return nil, false, err
	}
	timeout := opts.ScenarioTimeout
	if timeout <= 0 {
		timeout = s.scenarioTimeout
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = s.maxAttempts
	}
	ctx, cancel := context.WithCancel(context.Background())
	sw = &Sweep{
		name:        opts.Name,
		key:         opts.Key,
		spec:        spec,
		specHash:    compiled.Hash(),
		createdAt:   time.Now(),
		compileSec:  compileSec,
		compiled:    compiled,
		scenarios:   scenarios,
		hashes:      hashes,
		spans:       make([]spanState, len(scenarios)),
		svc:         s,
		timeout:     timeout,
		maxAttempts: attempts,
		ctx:         ctx,
		cancel:      cancel,
		statuses:    make([]ScenarioStatus, len(scenarios)),
		results:     make([]*core.Result, len(scenarios)),
		notify:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	for i := range sw.statuses {
		name := scenarios[i].Name
		if name == "" {
			name = string(scenarios[i].Workload)
		}
		sw.statuses[i] = ScenarioStatus{Index: i, Name: name, Hash: hashes[i], State: StateQueued}
	}

	s.mu.Lock()
	if opts.Key != "" {
		// Re-check under the registry lock: a concurrent submission with
		// the same key may have registered between our fast-path check
		// and here. Losing the race means undoing the admission without
		// feeding the drain estimator (nothing completed).
		if id, ok := s.keys[opts.Key]; ok {
			if prev := s.sweeps[id]; prev != nil {
				s.mu.Unlock()
				s.pending.Add(-int64(len(scenarios)))
				cancel()
				s.idemHits.Inc()
				return prev, true, nil
			}
		}
	}
	for {
		sw.id = newSweepID()
		if _, taken := s.sweeps[sw.id]; !taken {
			break
		}
	}
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	if opts.Key != "" {
		s.keys[opts.Key] = sw.id
	}
	s.pruneLocked()
	s.mu.Unlock()

	// Durability point: the manifest must be on disk before any work is
	// admitted to the pool, so a crash from here on is recoverable. A
	// journal that cannot be created degrades to today's in-memory-only
	// sweep (logged + counted), never a failed submission.
	s.journalSweep(sw, opts)
	go sw.run(opts.MaxConcurrent)
	return sw, false, nil
}

// sweepForKey resolves an idempotency key to its live sweep.
func (s *Service) sweepForKey(key string) (*Sweep, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.keys[key]
	if !ok {
		return nil, false
	}
	sw, ok := s.sweeps[id]
	if ok {
		s.idemHits.Inc()
	}
	return sw, ok
}

// pruneLocked drops the oldest finished sweeps beyond the retention cap
// so the registry (and the results each sweep pins) stays bounded.
// Callers hold s.mu.
func (s *Service) pruneLocked() {
	excess := len(s.order) - s.maxSweeps
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		sw := s.sweeps[id]
		finished := false
		if sw != nil {
			select {
			case <-sw.done:
				finished = true
			default:
			}
		}
		if excess > 0 && (sw == nil || finished) {
			delete(s.sweeps, id)
			s.forgetLocked(id, sw)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// forgetLocked releases a dropped sweep's registry side state: its
// idempotency-key binding and its durable journal (a pruned sweep must
// not be re-adopted at the next restart). Callers hold s.mu.
func (s *Service) forgetLocked(id string, sw *Sweep) {
	if sw != nil && sw.key != "" && s.keys[sw.key] == id {
		delete(s.keys, sw.key)
	}
	if s.store != nil {
		if err := s.store.RemoveJournal(id); err != nil && s.logf != nil {
			s.logf("service: sweep %s journal remove: %v", id, err)
		}
	}
}

// admit reserves queue capacity for n scenarios, refusing when the
// service is closed or the reservation would exceed MaxPending.
func (s *Service) admit(n int) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for {
		cur := s.pending.Load()
		if int(cur)+n > s.maxPending {
			s.rejections.Inc()
			return fmt.Errorf("%w: %d pending + %d submitted exceeds %d",
				ErrSaturated, cur, n, s.maxPending)
		}
		if s.pending.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// release returns n scenarios' worth of queue capacity and feeds the
// drain-rate estimate the saturated-queue Retry-After hint is derived
// from.
func (s *Service) release(n int) {
	s.pending.Add(-int64(n))
	s.drain.note(n, time.Now())
}

// Close stops admitting new sweeps (Submit returns ErrClosed). Already
// submitted sweeps keep working; pair with Drain or CancelAll for the
// graceful-shutdown sequence. Safe to call repeatedly.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// CloseDraining closes the service and records when the drain window
// will end, so refused submissions (ErrClosed → 503) can carry a
// Retry-After derived from the time actually remaining — the shutdown
// counterpart of the saturated-queue hint.
func (s *Service) CloseDraining(d time.Duration) {
	if d > 0 {
		s.drainBy.Store(time.Now().Add(d).UnixNano())
	}
	s.Close()
}

// closedRetryAfterSec derives the ErrClosed Retry-After hint from the
// remaining drain window: a client told to come back after the deadline
// finds either a restarted instance or a connection refused it can
// handle. With no recorded deadline (Close without CloseDraining) a
// minimal hint still beats none.
func (s *Service) closedRetryAfterSec() int {
	dl := s.drainBy.Load()
	if dl == 0 {
		return 1
	}
	sec := int(time.Until(time.Unix(0, dl)).Seconds()) + 1
	switch {
	case sec < 1:
		return 1
	case sec > 60:
		return 60
	}
	return sec
}

// Drain blocks until every submitted sweep reaches a terminal state or
// ctx expires — the shutdown step that lets in-flight sweeps finish (and
// streaming clients receive their final lines) before the HTTP server
// goes away. Call Close first so the set of sweeps being waited on
// cannot grow.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		sweeps = append(sweeps, sw)
	}
	s.mu.Unlock()
	for _, sw := range sweeps {
		select {
		case <-sw.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Studies fail fast once the service is closed (their next
	// generation submission refuses), so this converges too.
	return s.drainStudies(ctx)
}

// CancelAll aborts every sweep — the impatient half of shutdown (second
// SIGINT): queued scenarios become cancelled and running simulations
// stop at their next tick boundary.
func (s *Service) CancelAll() {
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		sweeps = append(sweeps, sw)
	}
	s.mu.Unlock()
	for _, sw := range sweeps {
		sw.Cancel()
	}
	s.cancelAllStudies()
}

// Remove drops a finished sweep from the registry, releasing the
// results it pins (cached entries stay until the result cache evicts
// them). It refuses to remove a sweep that is still working.
func (s *Service) Remove(id string) error {
	sw, ok := s.Sweep(id)
	if !ok {
		return fmt.Errorf("service: no sweep %q", id)
	}
	select {
	case <-sw.done:
	default:
		return fmt.Errorf("service: sweep %q still running; cancel it first", id)
	}
	s.mu.Lock()
	delete(s.sweeps, id)
	s.forgetLocked(id, sw)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	return nil
}

// Sweep resolves a sweep by id.
func (s *Service) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// List snapshots every sweep in submission order (summary form, without
// per-scenario detail).
func (s *Service) List() []SweepStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]SweepStatus, 0, len(ids))
	for _, id := range ids {
		if sw, ok := s.Sweep(id); ok {
			st := sw.Status()
			st.Scenarios = nil
			out = append(out, st)
		}
	}
	return out
}

// Cancel aborts a sweep by id: queued scenarios become cancelled and
// running simulations stop at their next tick boundary (mid-day). Safe
// to call repeatedly.
func (s *Service) Cancel(id string) error {
	sw, ok := s.Sweep(id)
	if !ok {
		return fmt.Errorf("service: no sweep %q", id)
	}
	sw.Cancel()
	return nil
}

// ID returns the sweep's identifier.
func (sw *Sweep) ID() string { return sw.id }

// SpecHash returns the compiled spec's content hash.
func (sw *Sweep) SpecHash() string { return sw.specHash }

// ScenarioHashes returns the per-scenario content hashes, indexed like
// the submitted scenarios.
func (sw *Sweep) ScenarioHashes() []string { return append([]string(nil), sw.hashes...) }

// Cancel aborts the sweep (see Service.Cancel).
func (sw *Sweep) Cancel() { sw.cancel() }

// Done returns a channel closed once every scenario is terminal.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Wait blocks until the sweep finishes or ctx expires.
func (sw *Sweep) Wait(ctx context.Context) error {
	select {
	case <-sw.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots the sweep including per-scenario states.
func (sw *Sweep) Status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:        sw.id,
		Name:      sw.name,
		SpecHash:  sw.specHash,
		CreatedAt: sw.createdAt,
		Total:     len(sw.statuses),
		Recovered: sw.recovered,
		Key:       sw.key,
		Scenarios: append([]ScenarioStatus(nil), sw.statuses...),
	}
	for _, s := range sw.statuses {
		switch s.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateCached:
			st.Cached++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	st.Finished = st.Queued == 0 && st.Running == 0
	return st
}

// Results snapshots the per-scenario results, indexed like the submitted
// scenarios; unfinished or failed entries are nil. Results may be served
// from the shared cache — treat them as read-only. For a sweep recovered
// from the journal, results of journal-terminal scenarios are loaded
// lazily from the durable store on first demand (recovery itself only
// verifies they exist, so startup stays cheap).
func (sw *Sweep) Results() []*core.Result {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.recovered {
		sw.loadRecoveredLocked()
	}
	return append([]*core.Result(nil), sw.results...)
}

// loadRecoveredLocked fills nil result slots of done/cached scenarios
// from the durable store. Entries that have since been deleted or
// quarantined simply stay nil — status is served from the journal
// either way. Callers hold sw.mu.
func (sw *Sweep) loadRecoveredLocked() {
	st := sw.svc.store
	if st == nil {
		return
	}
	for i := range sw.statuses {
		if sw.results[i] != nil {
			continue
		}
		sc := &sw.statuses[i]
		if sc.State != StateDone && sc.State != StateCached {
			continue
		}
		if res, err := st.Get(sw.specHash, sc.Hash); err == nil {
			sw.results[i] = res
		}
	}
}

// changed returns a channel closed at the next state change — the
// broadcast primitive behind the streaming endpoints.
func (sw *Sweep) changed() <-chan struct{} {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.notify
}

func (sw *Sweep) update(mutate func()) {
	sw.mu.Lock()
	mutate()
	close(sw.notify)
	sw.notify = make(chan struct{})
	sw.mu.Unlock()
}

// run drives the sweep: spawn one bounded goroutine per scenario, each
// gated by the per-sweep limit and the service-wide worker pool.
func (sw *Sweep) run(maxConcurrent int) {
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	var wg sync.WaitGroup
loop:
	for i := range sw.scenarios {
		if sw.terminalAt(i) {
			// Journal-restored terminal state (recovered sweep): the
			// outcome is already recorded and its reservation was never
			// re-admitted — nothing to dispatch.
			continue
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			case <-sw.ctx.Done():
				break loop
			}
		} else if sw.ctx.Err() != nil {
			break loop
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			sw.runOne(i)
		}(i)
	}
	wg.Wait()
	// Anything never dispatched (cancel hit the dispatch loop) is
	// cancelled in place; each released scenario returns its queue
	// reservation and still emits its lifecycle span (state=cancelled,
	// tier=none, no attempts).
	var undispatched []ScenarioStatus
	sw.update(func() {
		for i := range sw.statuses {
			if !sw.statuses[i].Terminal() && sw.statuses[i].State == StateQueued {
				sw.statuses[i].State = StateCancelled
				undispatched = append(undispatched, sw.statuses[i])
			}
		}
	})
	sw.svc.release(len(undispatched))
	for _, st := range undispatched {
		sw.emitSpan(st.Index, st, tierNone)
	}
	if elapsed := time.Since(sw.createdAt).Seconds(); elapsed > 0 {
		sw.svc.scenRate.Set(float64(len(sw.statuses)) / elapsed)
	}
	// Seal the journal: an end line tells the next startup this sweep
	// owes nothing. Cancelled scenarios are deliberately not recorded as
	// terminal facts, so the disposition carries whether any exist.
	if j := sw.journal; j != nil {
		disposition := "complete"
		if st := sw.Status(); st.Cancelled > 0 {
			disposition = "cancelled"
		}
		if err := j.End(disposition); err != nil && sw.svc.logf != nil {
			sw.svc.logf("service: sweep %s journal end: %v", sw.id, err)
		}
	}
	// Release per-sweep resources promptly: the scenario slice can pin
	// multi-gigabyte replay datasets and the compiled spec pins power
	// models — neither is needed once every scenario is terminal (status
	// and results live in their own slices). Without this, a cancelled
	// sweep kept its inputs pinned until the registry pruned it, which on
	// a long-running server could be process lifetime.
	sw.cancel()
	sw.mu.Lock()
	sw.scenarios, sw.compiled = nil, nil
	sw.mu.Unlock()
	close(sw.done)
}

// runOne resolves one scenario through the cache or the simulator.
func (sw *Sweep) runOne(i int) {
	if sw.scenarios[i].TelemetryTo != nil {
		// Streaming scenarios bypass the cache entirely: serving a hit
		// (or waiting on another submitter's run) would silently skip
		// the writer side effect the caller asked for.
		sw.runDirect(i)
		return
	}
	key := sw.specHash + ":" + sw.hashes[i]
	for {
		entry, leader := sw.svc.cache.acquire(key)
		if leader {
			sw.lead(i, key, entry)
			return
		}
		// Someone else — possibly a concurrently submitted duplicate —
		// is simulating this exact (spec, scenario); wait for it.
		select {
		case <-entry.done:
		case <-sw.ctx.Done():
			sw.record(i, nil, sw.ctx.Err(), tierNone)
			return
		}
		if errors.Is(entry.err, errAbandoned) {
			continue // leader cancelled before running; take over
		}
		if entry.err != nil {
			// The leader simulated and failed; failures are not cached
			// (complete() dropped the entry), so this is not a hit.
			sw.record(i, nil, entry.err, tierNone)
			return
		}
		sw.svc.hits.Inc()
		sw.record(i, entry.res, nil, tierMemory)
		return
	}
}

// errAbandoned marks a cache entry whose leader was cancelled before
// producing a result; waiters retry leadership instead of failing.
var errAbandoned = errors.New("service: scenario abandoned by cancelled sweep")

// simulate drives scenario i through the retry loop: each attempt runs
// inside the panic-isolation and deadline scope, transient failures —
// recovered panics, deadline overruns, simulation errors — retry with
// capped exponential backoff + jitter up to the sweep's attempt budget,
// and what survives is wrapped in a *ScenarioError so callers see the
// scenario's identity, attempt count, and cause. Sweep cancellation is
// never retried; ran is false when the sweep was cancelled before a pool
// slot freed.
func (sw *Sweep) simulate(i int) (res *core.Result, ran bool, err error) {
	for attempt := 1; ; attempt++ {
		res, ran, err = sw.attempt(i, attempt)
		if err == nil || !ran {
			return res, ran, err
		}
		if sw.ctx.Err() != nil {
			// The sweep itself was cancelled (possibly mid-attempt);
			// report the cancellation, not the attempt's error.
			return nil, ran, sw.ctx.Err()
		}
		if attempt >= sw.maxAttempts {
			return nil, true, &ScenarioError{
				ScenarioHash: sw.hashes[i], Index: i, Attempts: attempt, Cause: err,
			}
		}
		sw.svc.retries.Inc()
		if !sleepBackoff(sw.ctx, sw.svc.retryBase, sw.svc.retryMax, attempt) {
			return nil, true, sw.ctx.Err()
		}
	}
}

// attempt acquires a pool slot and runs scenario i once — the single run
// sequence shared by the cached and direct paths. The sweep context is
// threaded through the run, so a cancel aborts an in-flight simulation
// at its next tick boundary (mid-day); the per-attempt deadline, when
// configured, is layered on top and reported as a timeout rather than a
// cancellation.
func (sw *Sweep) attempt(i, attempt int) (res *core.Result, ran bool, err error) {
	waitStart := time.Now()
	select {
	case sw.svc.slots <- struct{}{}:
	case <-sw.ctx.Done():
		return nil, false, sw.ctx.Err()
	}
	defer func() { <-sw.svc.slots }()
	waitSec := time.Since(waitStart).Seconds()
	sw.spans[i].firstSlot(sw.createdAt)
	sw.update(func() {
		sw.statuses[i].State = StateRunning
		sw.statuses[i].Attempts = attempt
	})
	sw.svc.misses.Inc()
	ctx := sw.ctx
	if sw.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sw.timeout)
		defer cancel()
	}
	runStart := time.Now()
	res, err = sw.runRecovered(ctx, i, attempt)
	runSec := time.Since(runStart).Seconds()
	// Outcome classification shares its branches with the failure
	// counters — one increment per "timeout"/"panic" attempt span, so
	// the trace and FailureMetrics reconcile exactly.
	outcome := ""
	if err != nil && ctx.Err() == context.DeadlineExceeded && sw.ctx.Err() == nil {
		// The attempt's own deadline expired (not a sweep cancel):
		// normalize whatever surfaced — the context error itself or a
		// mid-tick wrap of it — into a typed, retriable timeout.
		sw.svc.timeouts.Inc()
		outcome = "timeout"
		err = fmt.Errorf("service: scenario deadline %v exceeded: %w",
			sw.timeout, context.DeadlineExceeded)
	}
	if outcome == "" {
		var pe *PanicError
		switch {
		case err == nil:
			outcome = "ok"
		case errors.As(err, &pe):
			outcome = "panic"
		case errors.Is(err, context.Canceled):
			outcome = "cancelled"
		default:
			outcome = "error"
		}
	}
	span := obs.AttemptSpan{Attempt: attempt, WaitSec: waitSec, RunSec: runSec, Outcome: outcome}
	if err != nil {
		span.Error = err.Error()
	}
	sw.spans[i].addAttempt(span)
	return res, true, err
}

// runDirect simulates the scenario without cache participation (used
// when the scenario carries runtime side effects a cached result could
// not reproduce).
func (sw *Sweep) runDirect(i int) {
	res, _, err := sw.simulate(i)
	tier := tierCompute
	if err != nil {
		tier = tierNone
	}
	sw.record(i, res, err, tier)
}

// lead resolves the scenario for every waiter on its cache key: disk
// first (the durable tier — a restart-surviving hit costs one file read
// and zero model builds), then simulation. Because only the key's leader
// reaches the store, single-flight semantics extend across all three
// tiers: N concurrent submissions of one scenario cost at most one disk
// read plus one simulation. With a shared store and a LeaseTTL, the
// single-flight extends across nodes too: the leader leases the key
// before computing locally, so of N services sharing the directory only
// one simulates while the others poll for its Put.
func (sw *Sweep) lead(i int, key string, entry *cacheEntry) {
	st := sw.svc.store
	if st != nil && sw.ctx.Err() == nil {
		if res, err := st.Get(sw.specHash, sw.hashes[i]); err == nil {
			sw.svc.hits.Inc()
			sw.svc.cache.complete(key, entry, res, nil)
			sw.record(i, res, nil, tierDisk)
			return
		}
		// ErrNotFound and ErrCorrupt (quarantined) both mean compute; the
		// recomputed result re-persists below, healing corrupt entries.
	}
	// Cross-node single-flight, local compute only: a coordinator never
	// leases before remote dispatch (the worker that computes the key
	// takes the lease; a coordinator holding it would deadlock them).
	var lease *store.Lease
	if st != nil && sw.svc.leaseTTL > 0 && sw.svc.runner == nil {
		var res *core.Result
		var err error
		lease, res, err = sw.waitLease(i)
		if res != nil {
			// Another node computed and persisted the key while we waited.
			sw.svc.hits.Inc()
			sw.svc.cache.complete(key, entry, res, nil)
			sw.record(i, res, nil, tierDisk)
			return
		}
		if err != nil {
			sw.svc.cache.complete(key, entry, nil, errAbandoned)
			sw.record(i, nil, err, tierNone)
			return
		}
	}
	var stopRenew chan struct{}
	if lease != nil {
		stopRenew = make(chan struct{})
		go sw.renewLease(lease, stopRenew)
	}
	res, ran, err := sw.simulate(i)
	if stopRenew != nil {
		close(stopRenew)
	}
	if !ran || errors.Is(err, context.Canceled) {
		// Never got a slot, or this sweep's cancel aborted the run
		// mid-day: release the key so another submitter can take over,
		// rather than publishing the cancellation to unrelated waiters.
		if lease != nil {
			lease.Release()
		}
		sw.svc.cache.complete(key, entry, nil, errAbandoned)
		sw.record(i, nil, err, tierNone)
		return
	}
	sw.svc.cache.complete(key, entry, res, err)
	if err == nil {
		if st != nil && sw.svc.runner == nil {
			// Persist after publishing so waiters are never delayed by
			// disk I/O. A failed Put is an observability event (store
			// put_errors), not a scenario failure — the result is already
			// served from memory. Skipped in coordinator mode: the worker
			// that computed the result persists it, so a shared store
			// counts each key exactly once.
			putStart := time.Now()
			perr := st.Put(sw.specHash, sw.hashes[i], res)
			sw.spans[i].setStoreSec(time.Since(putStart).Seconds())
			if perr != nil && sw.svc.logf != nil {
				sw.svc.logf("service: store put %s/%s: %v", sw.specHash, sw.hashes[i], perr)
			}
		}
	}
	if lease != nil {
		// Release only after the Put: a waiter that sees the lease go
		// away must find the result on its next store poll.
		lease.Release()
	}
	tier := tierCompute
	if err != nil {
		tier = tierNone
	}
	sw.record(i, res, err, tier)
}

// waitLease acquires the cross-node lease for scenario i, waiting out
// (and polling the store under) any other node's live lease. It returns
// exactly one of: a held lease (compute locally), a result another node
// persisted while we waited, or an error (the sweep was cancelled). All
// nil means lease I/O failed — fail open and compute without one; the
// worst case is a duplicate compute, never a stuck scenario.
func (sw *Sweep) waitLease(i int) (*store.Lease, *core.Result, error) {
	st := sw.svc.store
	ttl := sw.svc.leaseTTL
	poll := ttl / 10
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	for {
		lease, err := st.AcquireLease(sw.specHash, sw.hashes[i], sw.svc.owner, ttl)
		if err == nil {
			// Re-check the store before computing: the previous holder may
			// have Put between our miss and this acquire.
			if res, gerr := st.Get(sw.specHash, sw.hashes[i]); gerr == nil {
				lease.Release()
				return nil, res, nil
			}
			return lease, nil, nil
		}
		if !errors.Is(err, store.ErrLeaseHeld) {
			if sw.svc.logf != nil {
				sw.svc.logf("service: lease %s/%s: %v (computing without lease)",
					sw.specHash, sw.hashes[i], err)
			}
			return nil, nil, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-sw.ctx.Done():
			t.Stop()
			return nil, nil, sw.ctx.Err()
		}
		t.Stop()
		if res, gerr := st.Get(sw.specHash, sw.hashes[i]); gerr == nil {
			return nil, res, nil
		}
	}
}

// renewLease extends the held lease every TTL/3 until stop closes. A
// failed renew means a holder that overran its TTL lost the lease to a
// stealer; the compute still finishes and publishes (Puts are atomic and
// idempotent) — the stealer's duplicate run is the documented
// degradation mode, so the renewer just stops.
func (sw *Sweep) renewLease(l *store.Lease, stop <-chan struct{}) {
	interval := sw.svc.leaseTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-sw.ctx.Done():
			return
		case <-t.C:
			if err := l.Renew(sw.svc.leaseTTL); err != nil {
				return
			}
		}
	}
}

// record finalizes one scenario's status, returns its queue
// reservation, and emits the scenario's lifecycle span. tier is the
// cache tier that resolved it (tierMemory/tierDisk count as cache
// hits). It is called exactly once per dispatched scenario.
func (sw *Sweep) record(i int, res *core.Result, err error, tier string) {
	defer sw.svc.release(1)
	cacheHit := tier == tierMemory || tier == tierDisk
	var final ScenarioStatus
	sw.update(func() {
		st := &sw.statuses[i]
		st.CacheHit = cacheHit
		switch {
		case err != nil && errors.Is(err, context.Canceled):
			st.State = StateCancelled
		case err != nil:
			st.State = StateFailed
			st.Error = err.Error()
		case cacheHit:
			st.State = StateCached
			sw.results[i] = res
		default:
			st.State = StateDone
			sw.results[i] = res
		}
		if res != nil {
			st.WallSec = res.WallSec
		}
		final = *st
	})
	sw.appendJournal(final)
	sw.emitSpan(i, final, tier)
}

// terminalAt reports whether scenario i is already terminal — true only
// for journal-restored states on a recovered sweep at dispatch time.
func (sw *Sweep) terminalAt(i int) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.statuses[i].Terminal()
}

// cacheEntry is one in-flight or completed scenario result. done is
// closed once res/err are final; bytes is the entry's approximate
// resident size, fixed at completion.
type cacheEntry struct {
	done  chan struct{}
	res   *core.Result
	err   error
	bytes int64
}

// resultCache is the content-addressed result store with single-flight
// semantics: the first acquirer of a key leads (simulates); concurrent
// acquirers wait on the same entry, so N identical submissions cost one
// simulation. It is bounded both by entry count and — the production
// bound — by approximate resident bytes, since one result can be a bare
// report or a multi-megabyte telemetry export.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	maxBytes  int64
	bytes     int64 // Σ entry bytes over completed entries
	entries   map[string]*cacheEntry
	order     []string // completed keys, oldest first, for eviction
	evictions uint64   // completed entries dropped by the capacity bounds
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{cap: capacity, maxBytes: maxBytes, entries: make(map[string]*cacheEntry)}
}

// approxResultBytes estimates a result's resident size at insert time.
// It counts the dominant variable-size members — history samples and the
// exported telemetry's series points and per-job power traces — plus a
// fixed overhead for the report and bookkeeping. Precision is not the
// point; the estimate keeps eviction pressure proportional to what the
// cache actually pins.
func approxResultBytes(res *core.Result) int64 {
	const (
		base       = int64(2 << 10) // report, scenario copy, headers
		sampleSize = int64(14*8 + 2*24)
		pointSize  = int64(3*8 + 24)
		jobBase    = int64(256)
	)
	if res == nil {
		return base
	}
	n := base
	n += int64(len(res.History)) * sampleSize
	for i := range res.History {
		n += int64(len(res.History[i].CDUHeatW)+len(res.History[i].PartPowerW)) * 8
	}
	if d := res.Dataset; d != nil {
		n += int64(len(d.Series)) * pointSize
		for i := range d.Series {
			n += int64(len(d.Series[i].PartPowerW)) * 8
		}
		for i := range d.Jobs {
			n += jobBase + int64(len(d.Jobs[i].CPUPowerW)+len(d.Jobs[i].GPUPowerW))*8
		}
	}
	return n
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// acquire returns the entry for key and whether the caller leads its
// computation.
func (c *resultCache) acquire(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// complete publishes the leader's outcome. Failed and abandoned runs are
// dropped from the cache (a later submission may retry); successes are
// retained while they fit both the entry cap and the byte bound,
// evicting oldest-completed first (a result larger than the whole byte
// bound is published to its waiters but not retained).
func (c *resultCache) complete(key string, e *cacheEntry, res *core.Result, err error) {
	e.res, e.err = res, err
	c.mu.Lock()
	if err != nil {
		delete(c.entries, key)
	} else if e.bytes = approxResultBytes(res); e.bytes > c.maxBytes {
		// Larger than the whole byte bound: evicting every other entry
		// would not make it fit, so drop just this one instead of
		// flushing a warm cache.
		delete(c.entries, key)
		c.evictions++
	} else {
		c.bytes += e.bytes
		c.order = append(c.order, key)
		for len(c.order) > 0 && (len(c.order) > c.cap || c.bytes > c.maxBytes) {
			evict := c.order[0]
			c.order = c.order[1:]
			if old, ok := c.entries[evict]; ok {
				c.bytes -= old.bytes
				delete(c.entries, evict)
			}
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(e.done)
}

// stats returns the cache's eviction count, live entries, and the entry
// and byte capacities.
func (c *resultCache) stats() (evictions uint64, entries, capacity int, bytes, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions, len(c.entries), c.cap, c.bytes, c.maxBytes
}
