package service

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/telemetry"
)

func synthScenario(seed int64, horizon float64) core.Scenario {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	return core.Scenario{
		Name:       "synth",
		Workload:   core.WorkloadSynthetic,
		HorizonSec: horizon,
		TickSec:    15,
		Generator:  gen,
		NoExport:   true,
	}
}

func waitSweep(t *testing.T, sw *Sweep) SweepStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatalf("sweep %s did not finish: %v", sw.ID(), err)
	}
	return sw.Status()
}

// TestSubmitRunsAllScenarios: a basic sweep completes every scenario
// with a result, in input order.
func TestSubmitRunsAllScenarios(t *testing.T) {
	svc := New(Options{Workers: 4})
	scenarios := []core.Scenario{
		synthScenario(1, 1800), synthScenario(2, 1800), synthScenario(3, 1800),
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{Name: "basic"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done != len(scenarios) || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("unexpected final status: %+v", st)
	}
	for i, res := range sw.Results() {
		if res == nil || res.Report == nil || res.Report.EnergyMWh <= 0 {
			t.Fatalf("scenario %d: missing result", i)
		}
		if res.WallSec <= 0 {
			t.Errorf("scenario %d: WallSec not recorded", i)
		}
	}
}

// TestResubmissionServedFromCache: an identical second sweep costs zero
// simulations and returns the identical cached results.
func TestResubmissionServedFromCache(t *testing.T) {
	svc := New(Options{Workers: 4})
	scenarios := []core.Scenario{synthScenario(10, 1800), synthScenario(11, 1800)}
	spec := config.Frontier()

	first, err := svc.Submit(spec, scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, first)
	_, missesBefore, _ := svc.CacheStats()

	second, err := svc.Submit(spec, scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, second)
	if st.Cached != len(scenarios) {
		t.Fatalf("want %d cached, got %+v", len(scenarios), st)
	}
	_, missesAfter, _ := svc.CacheStats()
	if missesAfter != missesBefore {
		t.Fatalf("re-submission simulated: misses %d → %d", missesBefore, missesAfter)
	}
	fr, sr := first.Results(), second.Results()
	for i := range fr {
		if fr[i] != sr[i] {
			t.Fatalf("scenario %d: cached result is not the shared instance", i)
		}
	}
}

// TestConcurrentSubmitsSingleFlight: N sweeps of the same scenario
// submitted concurrently produce exactly one simulation; the rest wait
// on the in-flight entry and share its result.
func TestConcurrentSubmitsSingleFlight(t *testing.T) {
	svc := New(Options{Workers: 4})
	spec := config.Frontier()
	const n = 6
	sweeps := make([]*Sweep, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sweeps[k], errs[k] = svc.Submit(spec,
				[]core.Scenario{synthScenario(77, 3600)}, SweepOptions{})
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
	}
	var res *core.Result
	for k, sw := range sweeps {
		st := waitSweep(t, sw)
		if st.Done+st.Cached != 1 || st.Failed != 0 {
			t.Fatalf("sweep %d: %+v", k, st)
		}
		r := sw.Results()[0]
		if r == nil {
			t.Fatalf("sweep %d: nil result", k)
		}
		if res == nil {
			res = r
		} else if res != r {
			t.Fatalf("sweep %d: got a distinct result instance (extra simulation)", k)
		}
	}
	hits, misses, _ := svc.CacheStats()
	if misses != 1 {
		t.Fatalf("want exactly 1 simulation, got %d (hits %d)", misses, hits)
	}
	if hits != n-1 {
		t.Fatalf("want %d cache hits, got %d", n-1, hits)
	}
}

// TestCancelMidSweep: cancelling after the first completion leaves
// later scenarios cancelled, the sweep terminal, and nothing deadlocked.
func TestCancelMidSweep(t *testing.T) {
	svc := New(Options{Workers: 1})
	scenarios := make([]core.Scenario, 8)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(100+i), 86400)
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for {
		ch := sw.changed() // subscribe before snapshotting to never miss an update
		st := sw.Status()
		if st.Done >= 1 {
			break
		}
		select {
		case <-ch:
		case <-sw.Done():
		case <-deadline:
			t.Fatal("no scenario completed in time")
		}
	}
	sw.Cancel()
	st := waitSweep(t, sw)
	if st.Cancelled == 0 {
		t.Fatalf("expected cancellations after mid-sweep cancel: %+v", st)
	}
	if st.Done+st.Cached+st.Failed+st.Cancelled != st.Total {
		t.Fatalf("non-terminal scenarios after finish: %+v", st)
	}
	// The cancelled keys must not poison the cache: a fresh sweep of the
	// same scenarios simulates them successfully.
	again, err := svc.Submit(config.Frontier(), scenarios[:2], SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitSweep(t, again)
	if st2.Done+st2.Cached != 2 {
		t.Fatalf("post-cancel resubmission failed: %+v", st2)
	}
}

// TestScenarioHashStability pins the content-hash behavior the result
// cache depends on: equal content → equal hash, any outcome-affecting
// field change → different hash, runtime-only fields → no change.
func TestScenarioHashStability(t *testing.T) {
	base := synthScenario(42, 3600)
	h1, err := HashScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashScenario(synthScenario(42, 3600))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("identical scenarios hash differently: %s vs %s", h1, h2)
	}

	mutants := map[string]core.Scenario{}
	m := base
	m.HorizonSec = 7200
	mutants["horizon"] = m
	m = base
	m.PowerMode = "dc380"
	mutants["power mode"] = m
	m = base
	m.Cooling = true
	mutants["cooling"] = m
	m = base
	m.Generator.Seed = 43
	mutants["generator seed"] = m
	m = base
	m.Engine = "dense"
	mutants["engine"] = m
	m = base
	m.Dataset = &telemetry.Dataset{Epoch: "d", Jobs: []telemetry.JobRecord{{JobID: 1, NodeCount: 2}}}
	mutants["dataset"] = m
	for name, sc := range mutants {
		h, err := HashScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if h == h1 {
			t.Errorf("%s change did not change the hash", name)
		}
	}

	// Dataset content, not pointer identity, feeds the hash.
	d1 := &telemetry.Dataset{Epoch: "x", Jobs: []telemetry.JobRecord{{JobID: 9, NodeCount: 4}}}
	d2 := &telemetry.Dataset{Epoch: "x", Jobs: []telemetry.JobRecord{{JobID: 9, NodeCount: 4}}}
	a, b := base, base
	a.Dataset, b.Dataset = d1, d2
	ha, _ := HashScenario(a)
	hb, _ := HashScenario(b)
	if ha != hb {
		t.Error("equal dataset content hashed differently")
	}

	// Spec hashes: stable for equal content, sensitive to content.
	fr1, fr2 := config.Frontier(), config.Frontier()
	s1, err := fr1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := fr2.Hash()
	if s1 != s2 {
		t.Error("Frontier spec hash unstable")
	}
	mod := config.Frontier()
	mod.Partitions[0].GPUMaxW = 561
	s3, _ := mod.Hash()
	if s3 == s1 {
		t.Error("spec change did not change the spec hash")
	}
}

// TestPerSweepConcurrencyLimit: with MaxConcurrent 1 the sweep never has
// two scenarios running at once even on a wide pool.
func TestPerSweepConcurrencyLimit(t *testing.T) {
	svc := New(Options{Workers: 8})
	scenarios := make([]core.Scenario, 4)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(200+i), 3600)
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxRunning := 0
	for {
		ch := sw.changed()
		st := sw.Status()
		if st.Running > maxRunning {
			maxRunning = st.Running
		}
		if st.Finished {
			break
		}
		select {
		case <-ch:
		case <-sw.Done():
		}
	}
	waitSweep(t, sw)
	if maxRunning > 1 {
		t.Fatalf("observed %d concurrent scenarios under MaxConcurrent 1", maxRunning)
	}
}

// TestNegativeArrivalMeanFailsFast: a hostile generator config submitted
// through the service must fail the scenario, not hang a pool worker in
// an unbounded generation loop.
func TestNegativeArrivalMeanFailsFast(t *testing.T) {
	svc := New(Options{Workers: 1})
	sc := synthScenario(1, 3600)
	sc.Generator.ArrivalMeanSec = -1
	sw, err := svc.Submit(config.Frontier(), []core.Scenario{sc}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Failed != 1 {
		t.Fatalf("negative arrival mean should fail the scenario: %+v", st)
	}
}

// TestTelemetryToBypassesCache: a scenario carrying a streaming sink
// must simulate every time — a cache hit cannot reproduce the writer
// side effect.
func TestTelemetryToBypassesCache(t *testing.T) {
	svc := New(Options{Workers: 2})
	run := func() int {
		var buf bytes.Buffer
		sc := synthScenario(33, 1800)
		sc.TelemetryTo = &buf
		sw, err := svc.Submit(config.Frontier(), []core.Scenario{sc}, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st := waitSweep(t, sw)
		if st.Done != 1 {
			t.Fatalf("streaming scenario did not run: %+v", st)
		}
		return buf.Len()
	}
	first := run()
	second := run()
	if first == 0 || second == 0 {
		t.Fatalf("streaming sink received no bytes (first %d, second %d)", first, second)
	}
	if _, misses, _ := svc.CacheStats(); misses != 2 {
		t.Fatalf("streaming scenarios must bypass the cache: %d simulations", misses)
	}
}

// TestSweepRetentionBounded: finished sweeps beyond MaxSweeps are
// pruned so a long-running service does not pin results forever.
func TestSweepRetentionBounded(t *testing.T) {
	svc := New(Options{Workers: 2, MaxSweeps: 2})
	var last *Sweep
	for i := 0; i < 5; i++ {
		sw, err := svc.Submit(config.Frontier(),
			[]core.Scenario{synthScenario(int64(300+i), 900)}, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		waitSweep(t, sw)
		last = sw
	}
	if n := len(svc.List()); n > 3 {
		t.Fatalf("retained %d sweeps with MaxSweeps 2", n)
	}
	if _, ok := svc.Sweep(last.ID()); !ok {
		t.Error("most recent sweep must survive pruning")
	}
	if err := svc.Remove(last.ID()); err != nil {
		t.Fatalf("Remove finished sweep: %v", err)
	}
	if _, ok := svc.Sweep(last.ID()); ok {
		t.Error("removed sweep still listed")
	}
}
