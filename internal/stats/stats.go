// Package stats implements the descriptive statistics and error metrics
// used in the paper's verification-and-validation section (§IV): RMSE and
// MAE between model predictions and telemetry (Fig. 7), min/avg/max/std
// summaries (Table IV), percentiles, correlation, and time-series
// resampling helpers for aligning series recorded at different telemetry
// resolutions (Table II lists cadences from 1 s to 10 min).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by metrics that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// ErrLengthMismatch is returned when paired series differ in length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Summary holds the Table IV-style descriptive statistics of a sample.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
	Sum       float64
	Median    float64
	P05, P95  float64
}

// Summarize computes a Summary of vals. Returns ErrEmpty for no data.
func Summarize(vals []float64) (Summary, error) {
	var s Summary
	if len(vals) == 0 {
		return s, ErrEmpty
	}
	s.N = len(vals)
	s.Min, s.Max = vals[0], vals[0]
	for _, v := range vals {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	for _, v := range vals {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(s.N))
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P05 = quantileSorted(sorted, 0.05)
	s.P95 = quantileSorted(sorted, 0.95)
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Std returns the population standard deviation, or 0 for fewer than two
// samples.
func Std(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := Mean(vals)
	s := 0.0
	for _, v := range vals {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics.
func Quantile(vals []float64, q float64) (float64, error) {
	if len(vals) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns the root-mean-square error between predicted and measured.
func RMSE(pred, meas []float64) (float64, error) {
	if len(pred) != len(meas) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - meas[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predicted and measured.
func MAE(pred, meas []float64) (float64, error) {
	if len(pred) != len(meas) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - meas[i])
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error (in percent) between
// predicted and measured, skipping points where measured is zero.
func MAPE(pred, meas []float64) (float64, error) {
	if len(pred) != len(meas) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	s, n := 0.0, 0
	for i := range pred {
		if meas[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - meas[i]) / meas[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return 100 * s / float64(n), nil
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / den, nil
}

// Resample converts a series sampled at srcDt seconds to dstDt seconds by
// averaging (downsampling, dstDt > srcDt) or sample-and-hold
// (upsampling). Both periods must be positive; for downsampling dstDt
// must be an integer multiple of srcDt.
func Resample(vals []float64, srcDt, dstDt float64) ([]float64, error) {
	if srcDt <= 0 || dstDt <= 0 {
		return nil, errors.New("stats: non-positive period")
	}
	if len(vals) == 0 {
		return nil, ErrEmpty
	}
	if dstDt == srcDt {
		return append([]float64(nil), vals...), nil
	}
	if dstDt > srcDt {
		ratio := dstDt / srcDt
		k := int(math.Round(ratio))
		if math.Abs(ratio-float64(k)) > 1e-9 {
			return nil, errors.New("stats: downsample ratio must be integral")
		}
		out := make([]float64, 0, (len(vals)+k-1)/k)
		for i := 0; i < len(vals); i += k {
			end := i + k
			if end > len(vals) {
				end = len(vals)
			}
			out = append(out, Mean(vals[i:end]))
		}
		return out, nil
	}
	// Upsample by sample-and-hold.
	ratio := srcDt / dstDt
	k := int(math.Round(ratio))
	if math.Abs(ratio-float64(k)) > 1e-9 {
		return nil, errors.New("stats: upsample ratio must be integral")
	}
	out := make([]float64, 0, len(vals)*k)
	for _, v := range vals {
		for j := 0; j < k; j++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// Rolling is an O(1)-update rolling accumulator for streaming series
// (used by the live dashboard and the RAPS per-tick statistics).
type Rolling struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Push adds a sample.
func (r *Rolling) Push(v float64) {
	if r.n == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.n++
	r.sum += v
	r.sumSq += v * v
}

// N returns the number of samples pushed.
func (r *Rolling) N() int { return r.n }

// Mean returns the running mean (0 if empty).
func (r *Rolling) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Std returns the running population standard deviation (0 if < 2 samples).
func (r *Rolling) Std() float64 {
	if r.n < 2 {
		return 0
	}
	m := r.Mean()
	v := r.sumSq/float64(r.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the minimum pushed value (0 if empty).
func (r *Rolling) Min() float64 { return r.min }

// Max returns the maximum pushed value (0 if empty).
func (r *Rolling) Max() float64 { return r.max }

// Sum returns the sum of pushed values.
func (r *Rolling) Sum() float64 { return r.sum }
