package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s, err := Summarize(clean)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.P05 <= s.Median && s.Median <= s.P95 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range cases {
		got, err := Quantile(vals, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("want ErrEmpty")
	}
}

func TestRMSEMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	meas := []float64{1, 2, 7}
	rmse, err := RMSE(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rmse-4/math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %v", rmse)
	}
	mae, err := MAE(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-4.0/3) > 1e-12 {
		t.Errorf("MAE = %v", mae)
	}
}

func TestRMSEAtLeastMAE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		rmse, _ := RMSE(a, b)
		mae, _ := MAE(a, b)
		if rmse < mae-1e-12 {
			t.Fatalf("RMSE %v < MAE %v", rmse, mae)
		}
	}
}

func TestErrorsOnMismatch(t *testing.T) {
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Error("RMSE mismatch")
	}
	if _, err := MAE(nil, nil); err != ErrEmpty {
		t.Error("MAE empty")
	}
	if _, err := MAPE([]float64{1}, []float64{2, 3}); err != ErrLengthMismatch {
		t.Error("MAPE mismatch")
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Error("Pearson mismatch")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	// Zero measurements are skipped.
	got, err = MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE with zero = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err != ErrEmpty {
		t.Error("all-zero measured should be ErrEmpty")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestResampleDown(t *testing.T) {
	// 1 s → 15 s cadence, as RAPS does for the cooling-model coupling.
	in := make([]float64, 30)
	for i := range in {
		in[i] = float64(i)
	}
	out, err := Resample(in, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if out[0] != 7 || out[1] != 22 {
		t.Errorf("out = %v, want [7 22]", out)
	}
}

func TestResampleUp(t *testing.T) {
	out, err := Resample([]float64{1, 2}, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1, 2, 2, 2}
	if len(out) != len(want) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestResampleIdentityAndErrors(t *testing.T) {
	out, err := Resample([]float64{1, 2, 3}, 5, 5)
	if err != nil || len(out) != 3 {
		t.Fatal("identity resample failed")
	}
	out[0] = 99 // must be a copy
	if o2, _ := Resample([]float64{1, 2, 3}, 5, 5); o2[0] != 1 {
		t.Error("identity resample should copy")
	}
	if _, err := Resample([]float64{1}, 0, 5); err == nil {
		t.Error("zero src period")
	}
	if _, err := Resample([]float64{1}, 2, 5); err == nil {
		t.Error("non-integral ratio should error")
	}
	if _, err := Resample(nil, 1, 5); err != ErrEmpty {
		t.Error("empty input")
	}
}

func TestResamplePartialTailWindow(t *testing.T) {
	out, err := Resample([]float64{1, 2, 3, 4, 5}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[2] != 5 {
		t.Errorf("tail window: %v", out)
	}
}

func TestRollingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var r Rolling
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()*5 + 17
		r.Push(vals[i])
	}
	s, _ := Summarize(vals)
	if r.N() != s.N {
		t.Errorf("N = %d vs %d", r.N(), s.N)
	}
	if math.Abs(r.Mean()-s.Mean) > 1e-9 {
		t.Errorf("Mean = %v vs %v", r.Mean(), s.Mean)
	}
	if math.Abs(r.Std()-s.Std) > 1e-9 {
		t.Errorf("Std = %v vs %v", r.Std(), s.Std)
	}
	if r.Min() != s.Min || r.Max() != s.Max {
		t.Errorf("Min/Max mismatch")
	}
	if math.Abs(r.Sum()-s.Sum) > 1e-9 {
		t.Errorf("Sum mismatch")
	}
}

func TestRollingEmpty(t *testing.T) {
	var r Rolling
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Error("zero-value Rolling should report zeros")
	}
}
