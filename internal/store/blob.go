package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Blob persistence: small named artifacts that ride in the result
// store's directory — today the optimizer's trained surrogate models
// (weights + feature map + training-set hash), persisted on study
// completion so a restarted service can warm-start the next study.
//
// Blobs live under dir/models/ — "models" is not a hex string, so the
// startup entry scan (which only descends into validKey directories)
// never confuses the blob area with spec-hash result directories.
// Writes use the same atomic idiom as result entries: temp file in the
// destination directory, fsync, rename.

// blobDir is the subdirectory blobs live in.
const blobDir = "models"

// validBlobName accepts conservative artifact names: letters, digits,
// dot, dash, underscore — no path separators, no leading dot (which
// would collide with temp files and hidden-file conventions).
func validBlobName(name string) bool {
	if name == "" || name[0] == '.' {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// BlobPath returns where a blob lives on disk (exposed for tests and
// operator inspection).
func (s *Store) BlobPath(name string) string {
	return filepath.Join(s.dir, blobDir, name)
}

// PutBlob durably persists a named artifact, atomically: the blob is
// visible in full or not at all, and an existing blob of the same name
// is replaced atomically.
func (s *Store) PutBlob(name string, data []byte) error {
	if !validBlobName(name) {
		return fmt.Errorf("store: put blob: invalid name %q", name)
	}
	dir := filepath.Join(s.dir, blobDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put blob: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put blob: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("store: put blob %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: put blob %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put blob %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), s.BlobPath(name)); err != nil {
		return fmt.Errorf("store: put blob %s: %w", name, err)
	}
	tmp = nil // renamed away; skip the cleanup defer
	return nil
}

// GetBlob loads a named artifact. A missing blob returns ErrNotFound.
func (s *Store) GetBlob(name string) ([]byte, error) {
	if !validBlobName(name) {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(s.BlobPath(name))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: get blob %s: %w", name, err)
	}
	return data, nil
}
