package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestBlobRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob("optimize-model.json"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: got %v, want ErrNotFound", err)
	}
	payload := []byte(`{"version":1}`)
	if err := s.PutBlob("optimize-model.json", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetBlob("optimize-model.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("blob = %q, want %q", got, payload)
	}
	// Overwrite replaces atomically.
	if err := s.PutBlob("optimize-model.json", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetBlob("optimize-model.json"); string(got) != "v2" {
		t.Fatalf("overwritten blob = %q", got)
	}
}

func TestBlobNameValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".", ".hidden", "a/b", "../escape", "a b", "x\x00y"} {
		if err := s.PutBlob(name, []byte("x")); err == nil {
			t.Errorf("PutBlob(%q) accepted", name)
		}
		if _, err := s.GetBlob(name); !errors.Is(err, ErrNotFound) {
			t.Errorf("GetBlob(%q): got %v, want ErrNotFound", name, err)
		}
	}
}

func TestBlobAreaInvisibleToEntryScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob("optimize-abc123.json", []byte(`{"k":1}`)); err != nil {
		t.Fatal(err)
	}
	// Reopen: the startup scan must neither index nor quarantine blobs.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("blob indexed as a result entry: %d entries", s2.Len())
	}
	if got, err := s2.GetBlob("optimize-abc123.json"); err != nil || string(got) != `{"k":1}` {
		t.Fatalf("blob lost across reopen: %q, %v", got, err)
	}
	// No quarantine sidecar appeared next to the blob.
	matches, _ := filepath.Glob(filepath.Join(dir, blobDir, "*"+quarantineSuffix))
	if len(matches) != 0 {
		t.Fatalf("blob quarantined: %v", matches)
	}
	if _, err := os.Stat(s2.BlobPath("optimize-abc123.json")); err != nil {
		t.Fatal(err)
	}
}
