package store

// The durable sweep journal. The result store persists *what* a
// scenario computed; the journal persists *that a sweep asked for it* —
// the sweep's identity, scenario list, options, and per-scenario
// terminal outcomes (including failures, which have no result-store
// entry at all). Together the two let a killed coordinator or serve
// process re-adopt its in-flight sweeps on restart instead of losing
// them: the manifest rebuilds the sweep, the records plus the result
// store mark what is already terminal, and only the remainder is
// recomputed.
//
// Journals live under dir/sweeps/<sweep-id>.journal — the "sweeps"
// directory name is not a hex hash, so the result-entry startup scan
// never confuses it for a spec directory. Each journal is NDJSON:
//
//	{"type":"sweep","sweep":{…manifest…}}
//	{"type":"scenario","scenario":{"index":3,"state":"done",…}}   // 0+ lines, appended as scenarios land
//	{"type":"end","disposition":"complete"}                        // only once every scenario is terminal
//
// The manifest line is written with the store's temp-file + fsync +
// atomic-rename discipline, so a journal is visible with its manifest
// complete or not at all. Records are appended with per-line fsync; a
// crash can therefore leave at most one torn trailing line, which the
// scan tolerates (everything before it is kept). A journal without the
// end line is an incomplete sweep — exactly the crash evidence recovery
// looks for.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	journalDirName = "sweeps"
	journalSuffix  = ".journal"
)

// SweepManifest is a sweep's durable identity, written once at
// submission. Spec and scenarios are carried as raw JSON: the store
// does not depend on the service's wire types — the service encodes at
// submit and decodes at recovery, and the store just keeps the bytes.
type SweepManifest struct {
	ID   string `json:"id"`
	Key  string `json:"key,omitempty"` // client idempotency key
	Name string `json:"name,omitempty"`
	// SpecHash and ScenarioHashes are the content-addressed result-store
	// keys; recovery verifies recomputed hashes against them before
	// trusting any journal record.
	SpecHash       string          `json:"spec_hash"`
	ScenarioHashes []string        `json:"scenario_hashes"`
	SpecJSON       json.RawMessage `json:"spec"`
	ScenariosJSON  json.RawMessage `json:"scenarios"`
	// Sweep options needed to resume with the same behavior.
	MaxConcurrent   int     `json:"max_concurrent,omitempty"`
	TimeoutSec      float64 `json:"timeout_sec,omitempty"`
	MaxAttempts     int     `json:"max_attempts,omitempty"`
	CreatedUnixNano int64   `json:"created_unix_nano"`
}

// ScenarioRecord is one scenario's terminal outcome. Failures are
// recorded with their error text and attempt count so a recovered
// sweep's status is reconstructible without recompute; cancellations
// are never recorded (a cancelled scenario is work the sweep still
// owes, which is the point of re-adoption).
type ScenarioRecord struct {
	Index    int     `json:"index"`
	Hash     string  `json:"hash"`
	State    string  `json:"state"` // done | cached | failed
	Error    string  `json:"error,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	WallSec  float64 `json:"wall_sec,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
}

// journalLine is the NDJSON envelope of every journal line.
type journalLine struct {
	Type        string          `json:"type"` // sweep | scenario | end
	Sweep       *SweepManifest  `json:"sweep,omitempty"`
	Scenario    *ScenarioRecord `json:"scenario,omitempty"`
	Disposition string          `json:"disposition,omitempty"` // end: complete | cancelled
}

// SweepJournal is an open, appendable journal for one live sweep. All
// methods are safe for concurrent use. I/O errors are sticky: after the
// first failed append the journal closes itself and every later call
// degrades to a counted no-op — journaling must never fail a sweep that
// would have succeeded in memory.
type SweepJournal struct {
	s    *Store
	path string

	mu       sync.Mutex
	f        *os.File
	err      error
	detached bool
}

// ValidSweepID accepts the journal's id alphabet: the "sw-" prefix
// followed by lowercase hex and dashes. Everything else (path
// separators, dots, uppercase) is rejected before touching the
// filesystem.
func ValidSweepID(id string) bool {
	rest, ok := strings.CutPrefix(id, "sw-")
	if !ok || rest == "" || len(id) > 80 {
		return false
	}
	for _, c := range rest {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && c != '-' {
			return false
		}
	}
	return true
}

func (s *Store) journalPath(id string) string {
	return filepath.Join(s.dir, journalDirName, id+journalSuffix)
}

// CreateJournal durably writes the sweep's manifest and returns the
// open journal for record appends. The manifest is written to a temp
// file, fsynced, and renamed into place — a journal is never visible
// half-written — and only then reopened for appending.
func (s *Store) CreateJournal(m *SweepManifest) (*SweepJournal, error) {
	j, err := s.createJournal(m)
	s.mu.Lock()
	if err != nil {
		s.journalErrs++
	} else {
		s.journalCreates++
	}
	s.mu.Unlock()
	return j, err
}

func (s *Store) createJournal(m *SweepManifest) (*SweepJournal, error) {
	if m == nil || !ValidSweepID(m.ID) {
		return nil, fmt.Errorf("store: journal: invalid sweep id %q", idOf(m))
	}
	dir := filepath.Join(s.dir, journalDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	tmp, err := os.CreateTemp(dir, "."+m.ID+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if err := json.NewEncoder(tmp).Encode(journalLine{Type: "sweep", Sweep: m}); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	if err := tmp.Sync(); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	path := s.journalPath(m.ID)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", m.ID, err)
	}
	tmp = nil
	return s.openJournalAppend(path)
}

func idOf(m *SweepManifest) string {
	if m == nil {
		return "<nil>"
	}
	return m.ID
}

// OpenJournal reopens an existing journal for appending — how a
// recovered sweep resumes recording terminal scenarios into the same
// file. Duplicate records for an index are fine: the scan keeps the
// last one.
func (s *Store) OpenJournal(id string) (*SweepJournal, error) {
	if !ValidSweepID(id) {
		return nil, fmt.Errorf("store: journal: invalid sweep id %q", id)
	}
	path := s.journalPath(id)
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", id, err)
	}
	return s.openJournalAppend(path)
}

func (s *Store) openJournalAppend(path string) (*SweepJournal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return &SweepJournal{s: s, path: path, f: f}, nil
}

// Append durably records one scenario's terminal outcome. Errors are
// sticky and degrade the journal to a no-op (see SweepJournal); the
// returned error is for logging only — the sweep proceeds regardless.
func (j *SweepJournal) Append(rec ScenarioRecord) error {
	return j.append(journalLine{Type: "scenario", Scenario: &rec})
}

// End records the sweep's disposition ("complete" or "cancelled") and
// closes the journal. A journal without an end line is what recovery
// re-adopts, so End must only be called once every scenario is
// terminal.
func (j *SweepJournal) End(disposition string) error {
	err := j.append(journalLine{Type: "end", Disposition: disposition})
	j.mu.Lock()
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	j.mu.Unlock()
	return err
}

func (j *SweepJournal) append(line journalLine) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.detached || j.err != nil || j.f == nil {
		return j.err
	}
	b, err := json.Marshal(line)
	if err == nil {
		_, err = j.f.Write(append(b, '\n'))
		if err == nil {
			err = j.f.Sync()
		}
	}
	if err != nil {
		// Sticky degradation: close, remember the error, count it. The
		// on-disk journal keeps everything up to the last good line —
		// recovery tolerates the torn tail this may leave.
		j.err = err
		_ = j.f.Close()
		j.f = nil
		j.s.mu.Lock()
		j.s.journalErrs++
		j.s.mu.Unlock()
		return err
	}
	j.s.mu.Lock()
	j.s.journalAppends++
	j.s.mu.Unlock()
	return nil
}

// Detach severs the journal from the process without writing an end
// line: the file on disk stays exactly as a kill -9 at this instant
// would have left it, and every later Append/End is a silent no-op.
// Crash-recovery tests use this to fabricate a mid-sweep kill inside
// one process.
func (j *SweepJournal) Detach() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.detached = true
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
}

// Err returns the sticky I/O error, if any.
func (j *SweepJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RemoveJournal deletes a sweep's journal file — called when the sweep
// is pruned or removed from the registry, so the journal directory
// stays bounded by sweep retention. Removing a missing journal is not
// an error.
func (s *Store) RemoveJournal(id string) error {
	if !ValidSweepID(id) {
		return fmt.Errorf("store: journal: invalid sweep id %q", id)
	}
	if err := os.Remove(s.journalPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: journal %s: %w", id, err)
	}
	return nil
}

// JournalEntry is one scanned journal: the manifest, the surviving
// records (last record per index wins), and the end disposition ("" for
// an incomplete sweep — the ones recovery re-adopts).
type JournalEntry struct {
	Manifest       SweepManifest
	Records        []ScenarioRecord
	EndDisposition string
	Path           string
}

// ScanJournals reads every journal under the store, oldest first
// (manifest creation time). A torn trailing line — the worst a crash
// mid-append can leave — truncates that journal's records at the tear;
// a journal whose manifest line itself is unreadable is quarantined
// like a corrupt result entry.
func (s *Store) ScanJournals() ([]JournalEntry, error) {
	dir := filepath.Join(s.dir, journalDirName)
	files, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: journal scan: %w", err)
	}
	var out []JournalEntry
	for _, f := range files {
		name := f.Name()
		if f.IsDir() || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		if !ValidSweepID(strings.TrimSuffix(name, journalSuffix)) {
			continue
		}
		path := filepath.Join(dir, name)
		e, err := readJournal(path)
		if err != nil {
			s.mu.Lock()
			s.quarantine(path)
			s.corrupt++
			s.mu.Unlock()
			continue
		}
		out = append(out, *e)
	}
	sort.SliceStable(out, func(i, k int) bool {
		return out[i].Manifest.CreatedUnixNano < out[k].Manifest.CreatedUnixNano
	})
	return out, nil
}

// readJournal decodes one journal file. Only a missing or malformed
// manifest line is an error; any later undecodable line is treated as
// the torn tail of a crash and reading stops there, keeping what came
// before.
func readJournal(path string) (*JournalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var first journalLine
	if err := dec.Decode(&first); err != nil {
		return nil, fmt.Errorf("manifest line: %w", err)
	}
	if first.Type != "sweep" || first.Sweep == nil {
		return nil, fmt.Errorf("manifest line: type %q", first.Type)
	}
	e := &JournalEntry{Manifest: *first.Sweep, Path: path}
	latest := make(map[int]int) // scenario index → position in e.Records
	for {
		var line journalLine
		if err := dec.Decode(&line); err != nil {
			// io.EOF is a clean end; anything else is the torn tail.
			break
		}
		switch line.Type {
		case "scenario":
			if line.Scenario == nil {
				continue
			}
			rec := *line.Scenario
			if pos, ok := latest[rec.Index]; ok {
				e.Records[pos] = rec
				continue
			}
			latest[rec.Index] = len(e.Records)
			e.Records = append(e.Records, rec)
		case "end":
			e.EndDisposition = line.Disposition
			if e.EndDisposition == "" {
				e.EndDisposition = "complete"
			}
			return e, nil
		}
	}
	return e, nil
}

// JournalCount returns the journal files currently on disk — test and
// operator introspection, not a hot path.
func (s *Store) JournalCount() int {
	files, err := os.ReadDir(filepath.Join(s.dir, journalDirName))
	if err != nil {
		return 0
	}
	n := 0
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), journalSuffix) {
			n++
		}
	}
	return n
}

// Has reports whether a durable result entry exists for the key without
// reading it: the index first, then a disk probe (a sibling node
// sharing the directory may have Put the key). Recovery uses this to
// decide whether a journaled "done" record can be trusted without
// loading every result at startup.
func (s *Store) Has(specHash, scenHash string) bool {
	key := specHash + "/" + scenHash
	s.mu.Lock()
	_, ok := s.index[key]
	s.mu.Unlock()
	if ok {
		return true
	}
	if !validKey(specHash) || !validKey(scenHash) {
		return false
	}
	_, err := os.Stat(s.EntryPath(specHash, scenHash))
	return err == nil
}
