package store

// Tests for the durable sweep journal: manifest round-trip, append /
// end semantics, crash artifacts (torn trailing lines), corrupt-manifest
// quarantine, last-record-per-index resolution, and the isolation
// invariant that the sweeps/ directory never leaks into the result-entry
// scan.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest(id string) *SweepManifest {
	return &SweepManifest{
		ID:              id,
		Key:             "client-key-1",
		Name:            "capacity-study",
		SpecHash:        specA,
		ScenarioHashes:  []string{scenA, scenB},
		SpecJSON:        json.RawMessage(`{"preset":"frontier"}`),
		ScenariosJSON:   json.RawMessage(`[{"name":"a"},{"name":"b"}]`),
		MaxConcurrent:   4,
		TimeoutSec:      30,
		MaxAttempts:     3,
		CreatedUnixNano: 12345,
	}
}

// TestJournalRoundTrip pins the full life of a journal: create with a
// manifest, append terminal records, end — and ScanJournals returns the
// same manifest, the surviving records, and the disposition.
func TestJournalRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := sampleManifest("sw-1a2b-f00d")
	j, err := s.CreateJournal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "done", Attempts: 1, WallSec: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 1, Hash: scenB, State: "failed", Error: "boom", Attempts: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.End("complete"); err != nil {
		t.Fatal(err)
	}

	entries, err := s.ScanJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ScanJournals returned %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Manifest.ID != m.ID || e.Manifest.Key != m.Key || e.Manifest.SpecHash != m.SpecHash {
		t.Fatalf("manifest mismatch: %+v", e.Manifest)
	}
	if string(e.Manifest.SpecJSON) != string(m.SpecJSON) {
		t.Fatalf("spec JSON mismatch: %s", e.Manifest.SpecJSON)
	}
	if e.EndDisposition != "complete" {
		t.Fatalf("disposition = %q, want complete", e.EndDisposition)
	}
	if len(e.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(e.Records))
	}
	if e.Records[0].State != "done" || e.Records[0].WallSec != 0.5 {
		t.Fatalf("record 0 mismatch: %+v", e.Records[0])
	}
	if e.Records[1].State != "failed" || e.Records[1].Error != "boom" || e.Records[1].Attempts != 3 {
		t.Fatalf("record 1 mismatch: %+v", e.Records[1])
	}
	st := s.Stats()
	if st.JournalCreates != 1 || st.JournalAppends != 3 || st.JournalErrors != 0 {
		t.Fatalf("metrics = creates %d appends %d errors %d", st.JournalCreates, st.JournalAppends, st.JournalErrors)
	}
}

// TestJournalTornTailTolerated: a crash mid-append leaves a torn
// trailing line; the scan keeps everything before the tear and reports
// the sweep incomplete.
func TestJournalTornTailTolerated(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(sampleManifest("sw-dead-beef"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Detach() // the file stays as a kill -9 would leave it

	path := s.journalPath("sw-dead-beef")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"scenario","scenario":{"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, err := s.ScanJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ScanJournals returned %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.EndDisposition != "" {
		t.Fatalf("torn journal reported disposition %q, want incomplete", e.EndDisposition)
	}
	if len(e.Records) != 1 || e.Records[0].State != "done" {
		t.Fatalf("records before the tear lost: %+v", e.Records)
	}
	if s.Stats().CorruptQuarantined != 0 {
		t.Fatal("torn tail must not quarantine the journal")
	}
}

// TestJournalCorruptManifestQuarantined: a journal whose first line is
// unreadable is renamed aside like a corrupt result entry, counted, and
// excluded from the scan.
func TestJournalCorruptManifestQuarantined(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(s.Dir(), journalDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "sw-bad-0"+journalSuffix)
	if err := os.WriteFile(bad, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := s.ScanJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("corrupt journal surfaced in scan: %+v", entries)
	}
	if _, err := os.Stat(bad + quarantineSuffix); err != nil {
		t.Fatalf("corrupt journal not quarantined: %v", err)
	}
	if s.Stats().CorruptQuarantined != 1 {
		t.Fatalf("CorruptQuarantined = %d, want 1", s.Stats().CorruptQuarantined)
	}
}

// TestJournalLastRecordPerIndexWins: a retried scenario appends a second
// record for the same index; the scan keeps only the newest, in the
// original position.
func TestJournalLastRecordPerIndexWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(sampleManifest("sw-aa-bb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "failed", Error: "transient"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 1, Hash: scenB, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "done", Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	j.Detach()
	entries, err := s.ScanJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Records) != 2 {
		t.Fatalf("unexpected scan result: %+v", entries)
	}
	r0 := entries[0].Records[0]
	if r0.Index != 0 || r0.State != "done" || r0.Attempts != 2 {
		t.Fatalf("last record for index 0 did not win: %+v", r0)
	}
}

// TestJournalReopenAppend: OpenJournal on an existing journal keeps
// appending to the same file — the recovered-sweep resume path.
func TestJournalReopenAppend(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(sampleManifest("sw-11-22"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Detach()

	j2, err := s.OpenJournal("sw-11-22")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(ScenarioRecord{Index: 1, Hash: scenB, State: "cached", CacheHit: true}); err != nil {
		t.Fatal(err)
	}
	if err := j2.End("complete"); err != nil {
		t.Fatal(err)
	}
	entries, err := s.ScanJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Records) != 2 || entries[0].EndDisposition != "complete" {
		t.Fatalf("reopened journal lost state: %+v", entries)
	}
	if !entries[0].Records[1].CacheHit {
		t.Fatal("cache_hit flag lost across reopen")
	}
	if _, err := s.OpenJournal("sw-no-such"); err == nil {
		t.Fatal("OpenJournal on a missing journal must error")
	}
}

// TestJournalRemove: removal deletes the file, is idempotent, and
// rejects invalid IDs before touching the filesystem.
func TestJournalRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(sampleManifest("sw-ff-ee"))
	if err != nil {
		t.Fatal(err)
	}
	j.Detach()
	if s.JournalCount() != 1 {
		t.Fatalf("JournalCount = %d, want 1", s.JournalCount())
	}
	if err := s.RemoveJournal("sw-ff-ee"); err != nil {
		t.Fatal(err)
	}
	if s.JournalCount() != 0 {
		t.Fatalf("journal survived removal")
	}
	if err := s.RemoveJournal("sw-ff-ee"); err != nil {
		t.Fatalf("removing a missing journal must be a no-op, got %v", err)
	}
	if err := s.RemoveJournal("../escape"); err == nil {
		t.Fatal("invalid id accepted by RemoveJournal")
	}
}

// TestJournalDirInvisibleToEntryScan: the sweeps/ directory must never
// be mistaken for a spec-hash directory by the result-entry startup
// scan, and journals must not count as entries.
func TestJournalDirInvisibleToEntryScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(sampleManifest("sw-ab-cd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ScenarioRecord{Index: 0, Hash: scenA, State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Detach()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1 (journal leaked into entry scan)", s2.Len())
	}
	if s2.Stats().CorruptQuarantined != 0 {
		t.Fatal("journal quarantined by the entry scan")
	}
	if s2.JournalCount() != 1 {
		t.Fatalf("journal lost across reopen: count = %d", s2.JournalCount())
	}
}

// TestStoreHas: Has sees both indexed entries and entries another
// process wrote to the shared directory, without reading them.
func TestStoreHas(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(specA, scenA) {
		t.Fatal("Has on an empty store")
	}
	if err := s.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if !s.Has(specA, scenA) {
		t.Fatal("Has missed an indexed entry")
	}
	// A sibling store over the same directory writes a second key; the
	// first store's index has never seen it, but the disk probe must.
	sib, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sib.Put(specA, scenB, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if !s.Has(specA, scenB) {
		t.Fatal("Has missed a sibling-written entry on disk")
	}
	if s.Has(specA, "ZZ-not-hex") {
		t.Fatal("Has accepted an invalid key")
	}
}

// TestValidSweepID pins the id alphabet: sw- prefix, lowercase hex and
// dashes only, bounded length.
func TestValidSweepID(t *testing.T) {
	good := []string{"sw-1", "sw-18f3a2b4c5d6e7f8-9abc", "sw-a-b-c"}
	for _, id := range good {
		if !ValidSweepID(id) {
			t.Errorf("ValidSweepID(%q) = false, want true", id)
		}
	}
	bad := []string{"", "sw-", "sw", "sweep-12", "sw-XYZ", "sw-12/..", "sw-12.journal",
		"sw-" + strings.Repeat("a", 80)}
	for _, id := range bad {
		if ValidSweepID(id) {
			t.Errorf("ValidSweepID(%q) = true, want false", id)
		}
	}
}
