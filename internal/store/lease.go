package store

// Cross-node single-flight leases. When several `exadigit serve`
// processes share one store directory (a coordinator plus its workers,
// or two coordinators on a shared filesystem), the in-memory
// single-flight of each service no longer prevents two nodes from
// simulating the same (spec, scenario) key. A lease is a small advisory
// file next to the entry — dir/<spec>/<scen>.lease — claimed before a
// node computes a key and released after the result is persisted, so
// every other node waits (polling the store for the holder's Put)
// instead of duplicating the work.
//
// Leases are time-bounded, not locks: a holder that dies mid-compute
// stops renewing, its lease expires after the TTL, and any waiter
// steals it and computes. Stealing is made single-winner by renaming
// the expired lease file to a unique tombstone first — rename of a
// missing file fails, so exactly one stealer proceeds to re-create the
// lease with O_EXCL. The guarantee is therefore "at most one live
// holder per key at a time, modulo clock skew and holders paused past
// their TTL"; a violated lease degrades to a duplicate compute (both
// results are bit-identical and Puts are atomic), never to corruption.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// ErrLeaseHeld reports that another live owner holds the key's lease.
// Callers typically poll the store for the holder's result and retry.
var ErrLeaseHeld = errors.New("store: lease held")

// leaseSuffix names lease files; they sit next to the entry they guard
// and are ignored by the entry index scan (which only reads .ndjson).
const leaseSuffix = ".lease"

// staleLeaseAge is how long past expiry a lease file must be before the
// startup sweep removes it. Live stealers handle expired leases
// themselves; the sweep only collects long-dead junk, and the generous
// margin makes it impossible to collide with a freshly re-written lease.
const staleLeaseAge = time.Hour

// leaseRecord is the on-disk lease content.
type leaseRecord struct {
	Owner string `json:"owner"`
	// ExpiresUnixNano is the wall-clock expiry. Nodes sharing a store are
	// assumed to have clocks within the TTL's order of magnitude (NTP
	// class skew); the TTL should be sized for the worst-case scenario
	// compute plus that skew.
	ExpiresUnixNano int64 `json:"expires_unix_nano"`
}

func (r leaseRecord) expired(now time.Time) bool {
	return now.UnixNano() >= r.ExpiresUnixNano
}

// Lease is a held lease on one (spec hash, scenario hash) key. Release
// it after the result is durably Put; Renew it periodically (every
// TTL/3 is customary) while a long compute is in flight.
type Lease struct {
	s     *Store
	path  string
	owner string
}

// Holder identifies a lease's current owner to a refused acquirer.
type Holder struct {
	Owner   string
	Expires time.Time
}

// AcquireLease claims the lease for (specHash, scenHash) on behalf of
// owner for ttl. It returns ErrLeaseHeld (wrapped with the holder's
// identity) when another live owner holds it; an expired or unreadable
// lease is stolen. Re-acquiring a key this owner already holds renews
// it. The call never blocks on another holder.
func (s *Store) AcquireLease(specHash, scenHash, owner string, ttl time.Duration) (*Lease, error) {
	if !validKey(specHash) || !validKey(scenHash) {
		return nil, fmt.Errorf("store: lease: invalid key %q/%q", specHash, scenHash)
	}
	if owner == "" || ttl <= 0 {
		return nil, fmt.Errorf("store: lease: owner and ttl required")
	}
	if err := os.MkdirAll(specDirOf(s.dir, specHash), 0o755); err != nil {
		return nil, fmt.Errorf("store: lease: %w", err)
	}
	// Serialize same-process acquirers. The file protocol alone cannot
	// close the window between tombstoning an expired lease and
	// re-creating the fresh one: a second stealer that read the expired
	// record before the rename can tombstone the *fresh* lease and win a
	// second time. In-process that window is closed here; across
	// processes the guarantee stays "at most one live holder, modulo
	// clock skew" as documented above.
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	path := s.EntryPath(specHash, scenHash) + leaseSuffix
	for {
		created, err := writeLeaseExcl(path, owner, ttl)
		if err != nil {
			return nil, err
		}
		if created {
			s.mu.Lock()
			s.leaseAcquired++
			s.mu.Unlock()
			return &Lease{s: s, path: path, owner: owner}, nil
		}
		rec, rerr := readLease(path)
		now := time.Now()
		switch {
		case rerr == nil && rec.Owner == owner:
			// Re-entrant acquire: refresh our own lease in place.
			l := &Lease{s: s, path: path, owner: owner}
			if err := l.Renew(ttl); err != nil {
				return nil, err
			}
			return l, nil
		case rerr == nil && !rec.expired(now):
			s.mu.Lock()
			s.leaseWaits++
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s/%s by %s until %s", ErrLeaseHeld,
				specHash, scenHash, rec.Owner,
				time.Unix(0, rec.ExpiresUnixNano).Format(time.RFC3339))
		default:
			// Expired or unreadable: steal. Renaming to a unique tombstone
			// is the atomic claim — of N concurrent stealers exactly one
			// rename succeeds; the losers see ENOENT and loop back to the
			// O_EXCL create race.
			tomb, terr := tombstoneName(path)
			if terr != nil {
				return nil, terr
			}
			if err := os.Rename(path, tomb); err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return nil, fmt.Errorf("store: lease steal: %w", err)
			}
			_ = os.Remove(tomb)
			s.mu.Lock()
			s.leaseSteals++
			s.mu.Unlock()
		}
	}
}

// Renew extends the lease by ttl from now. It fails if the lease file
// no longer names this owner — the holder overran its TTL and the lease
// was stolen — in which case the holder's result is still publishable
// (Puts are atomic and idempotent) but it should stop renewing.
func (l *Lease) Renew(ttl time.Duration) error {
	rec, err := readLease(l.path)
	if err != nil || rec.Owner != l.owner {
		return fmt.Errorf("store: lease lost by %s (stolen or removed)", l.owner)
	}
	return overwriteLease(l.path, l.owner, ttl)
}

// Release removes the lease if this owner still holds it. Safe to call
// after a failed Renew or on an already-stolen lease (it never removes
// another owner's lease).
func (l *Lease) Release() {
	rec, err := readLease(l.path)
	if err != nil || rec.Owner != l.owner {
		return
	}
	_ = os.Remove(l.path)
}

// writeLeaseExcl atomically creates the lease file, returning false (no
// error) when it already exists. The record is fully written and synced
// to a unique temp file first, then hard-linked into place — link fails
// with EEXIST when the path exists, giving O_EXCL semantics without the
// torn window of create-then-write (a concurrent reader must never see
// an empty lease and mistake it for stealable junk).
func writeLeaseExcl(path, owner string, ttl time.Duration) (bool, error) {
	tmp, err := tombstoneName(path)
	if err != nil {
		return false, err
	}
	data, err := json.Marshal(leaseRecord{Owner: owner, ExpiresUnixNano: time.Now().Add(ttl).UnixNano()})
	if err != nil {
		return false, fmt.Errorf("store: lease: %w", err)
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return false, fmt.Errorf("store: lease: %w", err)
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, path); err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: lease: %w", err)
	}
	return true, nil
}

// overwriteLease atomically replaces the lease content (temp + rename)
// — the renewal write, which must never leave a torn record behind.
func overwriteLease(path, owner string, ttl time.Duration) error {
	tmp, err := tombstoneName(path)
	if err != nil {
		return err
	}
	data, err := json.Marshal(leaseRecord{Owner: owner, ExpiresUnixNano: time.Now().Add(ttl).UnixNano()})
	if err != nil {
		return fmt.Errorf("store: lease renew: %w", err)
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: lease renew: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: lease renew: %w", err)
	}
	return nil
}

func readLease(path string) (leaseRecord, error) {
	var rec leaseRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, err
	}
	if rec.Owner == "" {
		return rec, errors.New("store: lease: empty owner")
	}
	return rec, nil
}

// tombstoneName derives a unique sibling name for steal/renew renames.
// The random suffix keeps concurrent stealers from colliding on the
// tombstone itself; the leading dot keeps it out of every scan.
func tombstoneName(path string) (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("store: lease: %w", err)
	}
	return path + ".tomb-" + hex.EncodeToString(b[:]), nil
}
