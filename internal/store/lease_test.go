package store

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

const (
	leaseSpec = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	leaseScen = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

func TestLeaseAcquireHoldRelease(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.AcquireLease(leaseSpec, leaseScen, "node-a", time.Minute)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// A second owner is refused while the lease is live.
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "node-b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second owner got %v, want ErrLeaseHeld", err)
	}
	// Re-entrant acquire by the holder renews instead of refusing.
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "node-a", time.Minute); err != nil {
		t.Fatalf("re-entrant acquire: %v", err)
	}
	l.Release()
	// Released: anyone can claim.
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "node-b", time.Minute); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	m := s.Stats()
	if m.LeasesAcquired < 2 || m.LeaseWaits != 1 {
		t.Fatalf("lease metrics %+v", m)
	}
}

func TestLeaseStealOnExpiry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "dead-node", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	l, err := s.AcquireLease(leaseSpec, leaseScen, "survivor", time.Minute)
	if err != nil {
		t.Fatalf("steal of expired lease failed: %v", err)
	}
	if m := s.Stats(); m.LeaseSteals != 1 {
		t.Fatalf("steals = %d, want 1 (%+v)", m.LeaseSteals, m)
	}
	// The dead node's handle can no longer renew or release the lease.
	dead := &Lease{s: s, path: l.path, owner: "dead-node"}
	if err := dead.Renew(time.Minute); err == nil {
		t.Fatal("dead node renewed a stolen lease")
	}
	dead.Release()
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "third", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stolen lease not held after dead-node Release: %v", err)
	}
}

// TestLeaseConcurrentStealSingleWinner drives N goroutines at one
// expired lease; exactly one must win each round (the others see
// ErrLeaseHeld from the winner's fresh lease or lose the tombstone
// race and retry internally).
func TestLeaseConcurrentStealSingleWinner(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if _, err := s.AcquireLease(leaseSpec, leaseScen, "dead", time.Nanosecond); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		var mu sync.Mutex
		winners := 0
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				l, err := s.AcquireLease(leaseSpec, leaseScen, string(rune('a'+g))+"-stealer", time.Minute)
				if err == nil {
					mu.Lock()
					winners++
					mu.Unlock()
					_ = l
				} else if !errors.Is(err, ErrLeaseHeld) {
					t.Errorf("stealer %d: %v", g, err)
				}
			}(g)
		}
		wg.Wait()
		if winners != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, winners)
		}
		// Clean the slate for the next round.
		_ = os.Remove(s.EntryPath(leaseSpec, leaseScen) + leaseSuffix)
	}
}

// TestOpenSweepsStaleLeases: a long-expired lease file is collected at
// startup; a live one survives.
func TestOpenSweepsStaleLeases(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireLease(leaseSpec, leaseScen, "live", time.Hour); err != nil {
		t.Fatal(err)
	}
	stale := s.EntryPath(leaseSpec, "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc") + leaseSuffix
	if err := overwriteLease(stale, "long-dead", -2*staleLeaseAge); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale lease survived the startup sweep")
	}
	live := s.EntryPath(leaseSpec, leaseScen) + leaseSuffix
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("live lease was swept: %v", err)
	}
	_ = s2
}
