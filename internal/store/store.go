// Package store is the durable, content-addressed scenario-result store
// behind the sweep service — the persistence tier that lets a killed and
// restarted `exadigit serve` re-serve a finished sweep from disk instead
// of recomputing it (ROADMAP item 1's restart-survival requirement).
//
// Each completed scenario result is one NDJSON file keyed by the same
// (spec hash, scenario hash) pair the in-memory result cache uses, laid
// out as dir/<spec-hash>/<scenario-hash>.ndjson:
//
//	{"type":"result","spec_hash":"…","scenario_hash":"…","name":"…","wall_sec":1.2,"report":{…}}
//	{"type":"sample",…}        // one per retained history sample
//	{"type":"meta",…}          // telemetry stream lines (when the result
//	{"type":"series",…}        // carries a Dataset export), in the same
//	{"type":"job",…}           // NDJSON format internal/telemetry streams
//	{"type":"end"}
//
// Entries are written atomically (temp file in the same directory, fsync,
// rename), and the trailing end line makes truncation detectable: Open
// rebuilds the index on startup and quarantines any entry whose trailer
// is missing (renaming it aside as <file>.corrupt), and Get quarantines
// entries that fail to decode at read time. The store never returns a
// partially written result.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"exadigit/internal/core"
	"exadigit/internal/raps"
	"exadigit/internal/telemetry"
)

// Sentinel errors.
var (
	// ErrNotFound reports a key with no durable entry.
	ErrNotFound = errors.New("store: entry not found")
	// ErrCorrupt reports an entry that existed but failed integrity
	// checks; the offending file has been quarantined.
	ErrCorrupt = errors.New("store: entry corrupt")
)

// entrySuffix is the durable entry file extension; quarantineSuffix is
// appended (after entrySuffix) when an entry fails integrity checks.
const (
	entrySuffix      = ".ndjson"
	quarantineSuffix = ".corrupt"
)

// endLine is the integrity trailer every complete entry ends with.
var endLine = []byte(`{"type":"end"}`)

// Store is a durable scenario-result store rooted at one directory. All
// methods are safe for concurrent use. The store does not bound its disk
// usage — operators manage the directory like any other data dir (every
// entry is independently deletable; a deleted entry is simply recomputed
// on next demand).
type Store struct {
	dir string

	// leaseMu serializes AcquireLease within this process (lease.go);
	// it is never held together with mu.
	leaseMu sync.Mutex

	mu      sync.Mutex
	index   map[string]int64 // "spec/scen" → entry size in bytes
	bytes   int64
	hits    uint64
	misses  uint64
	puts    uint64
	putErrs uint64
	corrupt uint64 // entries quarantined (startup scan + read-time)

	// Quarantine aging and cross-node lease accounting.
	quarantinePurged uint64 // aged-out *.corrupt files deleted at Open
	leaseAcquired    uint64 // leases successfully claimed (incl. steals)
	leaseWaits       uint64 // acquires refused because a live owner held the key
	leaseSteals      uint64 // expired/unreadable leases taken over

	// Sweep-journal accounting (journal.go).
	journalCreates uint64 // manifests durably written
	journalAppends uint64 // scenario/end records durably appended
	journalErrs    uint64 // journal I/O failures (degraded to in-memory)
}

// Options configures Open behavior beyond the directory itself.
type Options struct {
	// QuarantineTTL ages out quarantined entries: at Open, *.corrupt
	// files older than this are deleted (they were kept for forensics;
	// past the TTL they are just dead bytes). 0 keeps quarantine files
	// forever — the pre-TTL behavior.
	QuarantineTTL time.Duration
}

// Metrics is the store's observability snapshot, served alongside the
// in-memory cache counters on /api/sweeps/metrics.
type Metrics struct {
	Hits               uint64 `json:"hits"`
	Misses             uint64 `json:"misses"`
	Puts               uint64 `json:"puts"`
	PutErrors          uint64 `json:"put_errors"`
	CorruptQuarantined uint64 `json:"corrupt_quarantined"`
	// QuarantinePurged counts quarantine files aged out by the startup
	// sweep (Options.QuarantineTTL).
	QuarantinePurged uint64 `json:"quarantine_purged"`
	// Lease accounting for the cross-node single-flight protocol.
	LeasesAcquired uint64 `json:"leases_acquired"`
	LeaseWaits     uint64 `json:"lease_waits"`
	LeaseSteals    uint64 `json:"lease_steals"`
	// Sweep-journal accounting: manifests written, records appended,
	// and I/O failures that degraded journaling to in-memory-only.
	JournalCreates uint64 `json:"journal_creates"`
	JournalAppends uint64 `json:"journal_appends"`
	JournalErrors  uint64 `json:"journal_errors"`
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
}

// Open roots a store at dir (created if missing) and rebuilds the index
// by scanning existing entries. Entries without the integrity trailer —
// e.g. a process killed mid-write before the atomic rename, or a file
// truncated by the filesystem — are quarantined, not served.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with startup-sweep configuration: quarantined
// entries older than Options.QuarantineTTL are deleted, and long-dead
// lease files (expired past any plausible TTL) are collected.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]int64)}
	specs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	now := time.Now()
	for _, sd := range specs {
		if !sd.IsDir() || !validKey(sd.Name()) {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, sd.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				continue
			}
			path := filepath.Join(dir, sd.Name(), name)
			if !strings.HasSuffix(name, entrySuffix) {
				s.sweepSidecar(path, name, now, opts)
				continue
			}
			scen := strings.TrimSuffix(name, entrySuffix)
			if !validKey(scen) {
				continue
			}
			size, ok := checkTrailer(path)
			if !ok {
				s.quarantine(path)
				s.corrupt++
				continue
			}
			s.index[sd.Name()+"/"+scen] = size
			s.bytes += size
		}
	}
	return s, nil
}

// sweepSidecar handles the non-entry files the startup scan walks past:
// quarantined entries past their TTL are deleted (they were kept for
// forensics and nobody came), lease files expired by a generous margin
// are junk from dead processes (live stealers handle freshly expired
// leases themselves — the margin guarantees no live holder or stealer
// is racing this removal), and orphaned lease tombstones from a crash
// mid-steal are collected on the same schedule.
func (s *Store) sweepSidecar(path, name string, now time.Time, opts Options) {
	switch {
	case strings.HasSuffix(name, quarantineSuffix):
		if opts.QuarantineTTL <= 0 {
			return
		}
		if fi, err := os.Stat(path); err == nil && now.Sub(fi.ModTime()) > opts.QuarantineTTL {
			if os.Remove(path) == nil {
				s.quarantinePurged++
			}
		}
	case strings.HasSuffix(name, leaseSuffix):
		if rec, err := readLease(path); err == nil {
			if now.Sub(time.Unix(0, rec.ExpiresUnixNano)) > staleLeaseAge {
				_ = os.Remove(path)
			}
			return
		}
		// Unreadable lease: fall back to file age.
		if fi, err := os.Stat(path); err == nil && now.Sub(fi.ModTime()) > staleLeaseAge {
			_ = os.Remove(path)
		}
	case strings.Contains(name, ".tomb-"):
		if fi, err := os.Stat(path); err == nil && now.Sub(fi.ModTime()) > staleLeaseAge {
			_ = os.Remove(path)
		}
	}
}

// specDirOf returns the per-spec subdirectory for a spec hash.
func specDirOf(dir, specHash string) string { return filepath.Join(dir, specHash) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a point-in-time metrics snapshot.
func (s *Store) Stats() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Hits:               s.hits,
		Misses:             s.misses,
		Puts:               s.puts,
		PutErrors:          s.putErrs,
		CorruptQuarantined: s.corrupt,
		QuarantinePurged:   s.quarantinePurged,
		LeasesAcquired:     s.leaseAcquired,
		LeaseWaits:         s.leaseWaits,
		LeaseSteals:        s.leaseSteals,
		JournalCreates:     s.journalCreates,
		JournalAppends:     s.journalAppends,
		JournalErrors:      s.journalErrs,
		Entries:            len(s.index),
		Bytes:              s.bytes,
	}
}

// EntryPath returns where the entry for (specHash, scenHash) lives —
// exposed for the fault-injection harness (chaos tests corrupt or
// truncate entries in place) and for operators inspecting the store.
func (s *Store) EntryPath(specHash, scenHash string) string {
	return filepath.Join(s.dir, specHash, scenHash+entrySuffix)
}

// validKey accepts lowercase-hex content hashes only, which both spec
// and scenario hashes are. Anything else (path separators, dotfiles,
// quarantined names) is rejected before touching the filesystem.
func validKey(k string) bool {
	if k == "" {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checkTrailer reports the file's size and whether it ends with the
// integrity trailer — the cheap startup check (a tail read, not a full
// parse) that catches truncation.
func checkTrailer(path string) (int64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, false
	}
	size := fi.Size()
	n := int64(len(endLine) + 2) // trailer + up to \r\n
	if n > size {
		return size, false
	}
	tail := make([]byte, n)
	if _, err := f.ReadAt(tail, size-n); err != nil {
		return size, false
	}
	return size, bytes.HasSuffix(bytes.TrimRight(tail, "\r\n"), endLine)
}

// quarantine renames a failed entry aside so it is never served again
// but stays on disk for forensics. Rename failures fall back to removal.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		_ = os.Remove(path)
	}
}

// resultLine is the entry header: identity, the end-of-run report, and
// the scalar result fields. History samples and the telemetry dataset
// follow as their own lines so multi-megabyte exports stream instead of
// materializing one giant JSON value.
type resultLine struct {
	Type         string       `json:"type"`
	SpecHash     string       `json:"spec_hash"`
	ScenarioHash string       `json:"scenario_hash"`
	Name         string       `json:"name,omitempty"`
	WallSec      float64      `json:"wall_sec"`
	Report       *raps.Report `json:"report,omitempty"`
}

// sampleLine is one retained history sample.
type sampleLine struct {
	Type string `json:"type"`
	raps.Sample
}

// Put durably persists a completed result under (specHash, scenHash),
// atomically: the entry is visible in full or not at all. The persisted
// form carries the report, history, wall time, and telemetry export;
// the originating Scenario struct is not persisted (the content hash is
// the scenario's durable identity), so results served from disk carry
// only the scenario name.
func (s *Store) Put(specHash, scenHash string, res *core.Result) error {
	err := s.put(specHash, scenHash, res)
	s.mu.Lock()
	if err != nil {
		s.putErrs++
	} else {
		s.puts++
	}
	s.mu.Unlock()
	return err
}

func (s *Store) put(specHash, scenHash string, res *core.Result) error {
	if !validKey(specHash) || !validKey(scenHash) {
		return fmt.Errorf("store: put: invalid key %q/%q", specHash, scenHash)
	}
	if res == nil {
		return fmt.Errorf("store: put: nil result")
	}
	specDir := filepath.Join(s.dir, specHash)
	if err := os.MkdirAll(specDir, 0o755); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	tmp, err := os.CreateTemp(specDir, "."+scenHash+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := writeEntry(bw, specHash, scenHash, res); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", specHash, scenHash, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	fi, err := tmp.Stat()
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	size := fi.Size()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	path := s.EntryPath(specHash, scenHash)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	tmp = nil // renamed away; skip the cleanup defer

	key := specHash + "/" + scenHash
	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.bytes -= old
	}
	s.index[key] = size
	s.bytes += size
	s.mu.Unlock()
	return nil
}

func writeEntry(w io.Writer, specHash, scenHash string, res *core.Result) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(resultLine{
		Type:         "result",
		SpecHash:     specHash,
		ScenarioHash: scenHash,
		Name:         res.Scenario.Name,
		WallSec:      res.WallSec,
		Report:       res.Report,
	}); err != nil {
		return err
	}
	for i := range res.History {
		if err := enc.Encode(sampleLine{Type: "sample", Sample: res.History[i]}); err != nil {
			return err
		}
	}
	if res.Dataset != nil {
		if err := telemetry.WriteStream(w, res.Dataset); err != nil {
			return err
		}
	}
	if _, err := w.Write(append(endLine, '\n')); err != nil {
		return err
	}
	return nil
}

// Get loads the durable result for (specHash, scenHash). A missing entry
// returns ErrNotFound; an entry that fails to decode — truncated past
// the startup check, bit-rotted, or hand-edited — is quarantined and
// returns ErrCorrupt. Both are misses to the caller: the scenario is
// simply recomputed (and re-persisted) by the sweep worker.
func (s *Store) Get(specHash, scenHash string) (*core.Result, error) {
	key := specHash + "/" + scenHash
	s.mu.Lock()
	size, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		// The index is a startup scan plus our own Puts — but when
		// several nodes share this directory (the distributed-sweep
		// deployment), a sibling may have persisted the key since. Probe
		// the disk before declaring a miss: Put renames are atomic, so a
		// visible file is a complete entry. One Stat per cold miss is
		// noise next to the recompute a false miss would cause — and the
		// cross-node lease protocol depends on waiters seeing the
		// holder's Put through exactly this path.
		var fi os.FileInfo
		var statErr error
		if validKey(specHash) && validKey(scenHash) {
			fi, statErr = os.Stat(s.EntryPath(specHash, scenHash))
		} else {
			statErr = ErrNotFound
		}
		if statErr != nil {
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
			return nil, ErrNotFound
		}
		size = fi.Size()
		s.mu.Lock()
		if _, dup := s.index[key]; !dup {
			s.index[key] = size
			s.bytes += size
		}
		s.mu.Unlock()
	}

	res, err := readEntry(s.EntryPath(specHash, scenHash), specHash, scenHash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.quarantine(s.EntryPath(specHash, scenHash))
		s.corrupt++
		s.misses++
		if _, ok := s.index[key]; ok {
			delete(s.index, key)
			s.bytes -= size
		}
		return nil, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, specHash, scenHash, err)
	}
	s.hits++
	return res, nil
}

// readEntry decodes one entry file back into a Result. The NDJSON lines
// are free of ordering assumptions except that the result header must
// come first and the end trailer must be present (its absence is how
// truncation past the last complete line is caught).
func readEntry(path, specHash, scenHash string) (*core.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var res *core.Result
	var ds *telemetry.Dataset
	ended := false
	for line := 0; ; line++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ended {
			return nil, fmt.Errorf("line %d: content after end trailer", line)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch probe.Type {
		case "result":
			var rl resultLine
			if err := json.Unmarshal(raw, &rl); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if line != 0 {
				return nil, fmt.Errorf("line %d: result header not first", line)
			}
			if rl.SpecHash != specHash || rl.ScenarioHash != scenHash {
				return nil, fmt.Errorf("line %d: entry is keyed %s/%s", line, rl.SpecHash, rl.ScenarioHash)
			}
			res = &core.Result{
				Scenario: core.Scenario{Name: rl.Name},
				Report:   rl.Report,
				WallSec:  rl.WallSec,
			}
		case "sample":
			if res == nil {
				return nil, fmt.Errorf("line %d: sample before result header", line)
			}
			var sl sampleLine
			if err := json.Unmarshal(raw, &sl); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			res.History = append(res.History, sl.Sample)
		case "meta":
			var m struct {
				Epoch       string  `json:"epoch"`
				SeriesDtSec float64 `json:"series_dt_sec"`
			}
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if ds == nil {
				ds = &telemetry.Dataset{}
			}
			ds.Epoch, ds.SeriesDtSec = m.Epoch, m.SeriesDtSec
		case "series":
			var p telemetry.SeriesPoint
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if ds == nil {
				ds = &telemetry.Dataset{}
			}
			ds.Series = append(ds.Series, p)
		case "job":
			var j telemetry.JobRecord
			if err := json.Unmarshal(raw, &j); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if ds == nil {
				ds = &telemetry.Dataset{}
			}
			ds.Jobs = append(ds.Jobs, j)
		case "end":
			ended = true
		default:
			return nil, fmt.Errorf("line %d: unknown type %q", line, probe.Type)
		}
	}
	if !ended {
		return nil, errors.New("missing end trailer (truncated entry)")
	}
	if res == nil {
		return nil, errors.New("missing result header")
	}
	res.Dataset = ds
	return res, nil
}
