package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"exadigit/internal/core"
	"exadigit/internal/raps"
	"exadigit/internal/telemetry"
)

const (
	specA = "aaaa1111"
	scenA = "bbbb2222"
	scenB = "cccc3333"
)

func sampleResult() *core.Result {
	return &core.Result{
		Scenario: core.Scenario{Name: "chaos-day"},
		Report: &raps.Report{
			JobsCompleted: 42,
			AvgPowerMW:    21.5,
			EnergyMWh:     510.25,
			AvgPUE:        1.032,
			Partitions: []raps.PartitionReport{
				{Name: "gpu", JobsCompleted: 40, AvgPowerMW: 20.0},
			},
		},
		History: []raps.Sample{
			{TimeSec: 15, PowerW: 2.1e7, PUE: 1.05, JobsRunning: 3, PartPowerW: []float64{2.1e7}},
			{TimeSec: 30, PowerW: 2.2e7, PUE: 1.04, JobsRunning: 4, PartPowerW: []float64{2.2e7}},
		},
		Dataset: &telemetry.Dataset{
			Epoch:       "2024-01-18",
			SeriesDtSec: 15,
			Jobs: []telemetry.JobRecord{
				{JobID: 7, NodeCount: 128, CPUPowerW: []float64{100, 110}},
			},
			Series: []telemetry.SeriesPoint{
				{TimeSec: 15, MeasuredPowerW: 2.1e7},
			},
		},
		WallSec: 0.125,
	}
}

// TestPutGetRoundTrip pins the durable round-trip: everything a cached
// result serves (report, history, telemetry export, wall time, name)
// survives Put → Get bit-for-bit.
func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if err := s.Put(specA, scenA, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(specA, scenA)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario.Name != want.Scenario.Name || got.WallSec != want.WallSec {
		t.Fatalf("scalar fields differ: %+v", got)
	}
	if !reflect.DeepEqual(got.Report, want.Report) {
		t.Fatalf("report round-trip mismatch:\n got %+v\nwant %+v", got.Report, want.Report)
	}
	if !reflect.DeepEqual(got.History, want.History) {
		t.Fatalf("history round-trip mismatch")
	}
	if !reflect.DeepEqual(got.Dataset, want.Dataset) {
		t.Fatalf("dataset round-trip mismatch:\n got %+v\nwant %+v", got.Dataset, want.Dataset)
	}
	m := s.Stats()
	if m.Hits != 1 || m.Puts != 1 || m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("unexpected metrics after round-trip: %+v", m)
	}
}

// TestGetMissAndLeanResult: a missing key is ErrNotFound; a lean result
// (report only, the HTTP sweep default) round-trips with nil history and
// dataset.
func TestGetMissAndLeanResult(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(specA, scenA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	lean := &core.Result{Report: &raps.Report{EnergyMWh: 1}, WallSec: 0.01}
	if err := s.Put(specA, scenA, lean); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(specA, scenA)
	if err != nil {
		t.Fatal(err)
	}
	if got.History != nil || got.Dataset != nil {
		t.Fatalf("lean result grew data on round-trip: %+v", got)
	}
	if got.Report.EnergyMWh != 1 {
		t.Fatalf("lean report mismatch: %+v", got.Report)
	}
}

// TestRestartRebuildsIndex: a fresh Open over an existing directory
// serves every complete entry written before the "restart".
func TestRestartRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenB, sampleResult()); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("rebuilt index has %d entries, want 2", s2.Len())
	}
	if _, err := s2.Get(specA, scenA); err != nil {
		t.Fatalf("restarted store lost %s/%s: %v", specA, scenA, err)
	}
	if _, err := s2.Get(specA, scenB); err != nil {
		t.Fatalf("restarted store lost %s/%s: %v", specA, scenB, err)
	}
}

// TestTruncatedEntryQuarantinedOnOpen: an entry missing its end trailer
// (kill mid-write, filesystem truncation) is quarantined at startup —
// not indexed, not served, renamed aside for forensics.
func TestTruncatedEntryQuarantinedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenB, sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := s1.EntryPath(specA, scenA)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("index has %d entries after quarantine, want 1", s2.Len())
	}
	if _, err := s2.Get(specA, scenA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("truncated entry served: %v", err)
	}
	if _, err := s2.Get(specA, scenB); err != nil {
		t.Fatalf("intact sibling entry lost: %v", err)
	}
	if m := s2.Stats(); m.CorruptQuarantined != 1 {
		t.Fatalf("quarantine not counted: %+v", m)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("quarantined file not preserved: %v", err)
	}
}

// TestCorruptEntryQuarantinedOnGet: corruption that appears after the
// index was built (the trailer intact but the body mangled) is caught at
// read time, quarantined, and reported as ErrCorrupt; a re-Put of the
// same key heals the store.
func TestCorruptEntryQuarantinedOnGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := s.EntryPath(specA, scenA)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle the header line but keep the end trailer, so only a full
	// read can notice.
	mangled := strings.Replace(string(data), `"type":"result"`, `"type":"garbage"`, 1)
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(specA, scenA); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt entry still indexed")
	}
	// Second Get is a plain miss (no double quarantine).
	if _, err := s.Get(specA, scenA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after quarantine, got %v", err)
	}
	if err := s.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
	if _, err := s.Get(specA, scenA); err != nil {
		t.Fatalf("healed entry not served: %v", err)
	}
}

// TestInvalidKeysRejected: keys that are not lowercase-hex hashes never
// touch the filesystem (path traversal is structurally impossible).
func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "../etc", "ABC", "a/b", ".hidden"} {
		if err := s.Put(k, scenA, sampleResult()); err == nil {
			t.Errorf("Put accepted invalid spec key %q", k)
		}
		if err := s.Put(specA, k, sampleResult()); err == nil {
			t.Errorf("Put accepted invalid scenario key %q", k)
		}
	}
	if m := s.Stats(); m.PutErrors == 0 {
		t.Error("put errors not counted")
	}
}

// TestOverwriteKeepsAccounting: re-putting a key replaces the entry and
// keeps byte accounting consistent.
func TestOverwriteKeepsAccounting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	b1 := s.Stats().Bytes
	lean := &core.Result{Report: &raps.Report{EnergyMWh: 2}}
	if err := s.Put(specA, scenA, lean); err != nil {
		t.Fatal(err)
	}
	m := s.Stats()
	if m.Entries != 1 {
		t.Fatalf("overwrite duplicated the entry: %+v", m)
	}
	if m.Bytes >= b1 {
		t.Fatalf("byte accounting did not shrink with the smaller entry: %d → %d", b1, m.Bytes)
	}
	got, err := s.Get(specA, scenA)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.EnergyMWh != 2 {
		t.Fatalf("overwrite served stale content: %+v", got.Report)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Join(s.Dir(), specA))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spec dir has %d files, want 1", len(entries))
	}
}

// TestQuarantineAgedOutAtOpen: quarantined entries older than the
// configured TTL are deleted by the startup sweep (and counted);
// younger ones are kept for forensics, and TTL 0 keeps everything.
func TestQuarantineAgedOutAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(specA, scenB, sampleResult()); err != nil {
		t.Fatal(err)
	}
	oldQ := s1.EntryPath(specA, scenA) + quarantineSuffix
	newQ := s1.EntryPath(specA, scenB) + quarantineSuffix
	if err := os.Rename(s1.EntryPath(specA, scenA), oldQ); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s1.EntryPath(specA, scenB), newQ); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(oldQ, stale, stale); err != nil {
		t.Fatal(err)
	}

	// TTL 0: nothing is touched.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m := s2.Stats(); m.QuarantinePurged != 0 {
		t.Fatalf("TTL 0 purged %d files", m.QuarantinePurged)
	}
	if _, err := os.Stat(oldQ); err != nil {
		t.Fatalf("TTL 0 removed a quarantine file: %v", err)
	}

	// 24h TTL: only the 48h-old file goes.
	s3, err := OpenOptions(dir, Options{QuarantineTTL: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if m := s3.Stats(); m.QuarantinePurged != 1 {
		t.Fatalf("purged = %d, want 1 (%+v)", m.QuarantinePurged, m)
	}
	if _, err := os.Stat(oldQ); !os.IsNotExist(err) {
		t.Fatal("aged quarantine file survived")
	}
	if _, err := os.Stat(newQ); err != nil {
		t.Fatalf("young quarantine file deleted: %v", err)
	}
}

// TestGetSeesSiblingWrites pins the multi-node store semantic: a key
// persisted by ANOTHER Store instance on the same directory (another
// node of a distributed sweep) is served by Get even though it is
// absent from this instance's startup index. The cross-node lease
// protocol depends on it — a waiter must see the holder's Put without
// reopening the store.
func TestGetSeesSiblingWrites(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Put(specA, scenA, sampleResult()); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(specA, scenA)
	if err != nil {
		t.Fatalf("sibling write invisible: %v", err)
	}
	if got.Report == nil || got.Report.JobsCompleted != 42 {
		t.Fatalf("sibling entry decoded wrong: %+v", got.Report)
	}
	m := b.Stats()
	if m.Hits != 1 || m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("adopted entry not accounted: %+v", m)
	}
	// A second Get serves from the now-updated index.
	if _, err := b.Get(specA, scenA); err != nil {
		t.Fatal(err)
	}
	// Keys nobody wrote are still plain misses.
	if _, err := b.Get(specA, scenB); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}
