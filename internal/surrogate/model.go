package surrogate

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"exadigit/internal/la"
)

// This file generalizes the 2-input PUE surrogate to the optimizer's
// d-dimensional knob space: a multi-target ridge model over quadratic
// features of an arbitrary knob vector, refit online as the optimizer's
// own sweep results stream in, and JSON-serializable (weights +
// feature-map spec + training-set hash) so a trained model persists in
// the service's -store directory and survives restarts.

// FeatureMap normalizes a d-dimensional input by per-dimension ranges
// and expands it to full quadratic features: [1, xᵢ, xᵢ², xᵢxⱼ (i<j)].
type FeatureMap struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// NewFeatureMap builds the map for inputs in [lo, hi] per dimension.
func NewFeatureMap(lo, hi []float64) (FeatureMap, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return FeatureMap{}, fmt.Errorf("surrogate: feature map needs matching non-empty bounds, got %d/%d", len(lo), len(hi))
	}
	return FeatureMap{Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...)}, nil
}

// Dims is the input dimensionality.
func (f FeatureMap) Dims() int { return len(f.Lo) }

// Len is the expanded feature count: 1 + 2d + d(d−1)/2.
func (f FeatureMap) Len() int {
	d := f.Dims()
	return 1 + 2*d + d*(d-1)/2
}

// Vector expands one input point.
func (f FeatureMap) Vector(x []float64) ([]float64, error) {
	d := f.Dims()
	if len(x) != d {
		return nil, fmt.Errorf("surrogate: input has %d dims, feature map wants %d", len(x), d)
	}
	out := make([]float64, 0, f.Len())
	out = append(out, 1)
	xn := make([]float64, d)
	for i := range x {
		xn[i] = norm(x[i], f.Lo[i], f.Hi[i])
		out = append(out, xn[i])
	}
	for i := 0; i < d; i++ {
		out = append(out, xn[i]*xn[i])
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, xn[i]*xn[j])
		}
	}
	return out, nil
}

// Model is a multi-target ridge regressor over quadratic knob features.
// The zero value is unusable; build with NewModel or UnmarshalJSON.
type Model struct {
	feats   FeatureMap
	targets []string
	lambda  float64
	weights [][]float64 // per target, nil until Fit
	rows    int
	hash    string // training-set content hash, stamped by Fit
}

// NewModel builds an untrained model for inputs bounded by [lo, hi] per
// dimension, predicting the named targets. lambda ≤ 0 defaults to 1e-6.
func NewModel(lo, hi []float64, targets []string, lambda float64) (*Model, error) {
	feats, err := NewFeatureMap(lo, hi)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("surrogate: model needs at least one target")
	}
	if lambda <= 0 {
		lambda = 1e-6
	}
	return &Model{feats: feats, targets: append([]string(nil), targets...), lambda: lambda}, nil
}

// Targets returns the target names, in prediction order.
func (m *Model) Targets() []string { return append([]string(nil), m.targets...) }

// Dims is the knob-vector dimensionality.
func (m *Model) Dims() int { return m.feats.Dims() }

// Trained reports whether Fit has succeeded at least once.
func (m *Model) Trained() bool { return m.weights != nil }

// Rows is the training-set size of the last successful Fit.
func (m *Model) Rows() int { return m.rows }

// TrainingHash is the content hash of the last Fit's training set — the
// provenance tag serialized with the model, so a persisted surrogate
// names exactly the data it was fitted on.
func (m *Model) TrainingHash() string { return m.hash }

// MinTrainRows is the smallest training set Fit accepts: the feature
// count (so the ridge system is not wildly underdetermined) with a
// floor of 4.
func (m *Model) MinTrainRows() int {
	n := m.feats.Len()
	if n < 4 {
		n = 4
	}
	return n
}

// Fit refits every target on the given training set: X rows are raw
// knob vectors, Y rows are per-target observations aligned with
// Targets(). The fit is deterministic (dense Cholesky-free LU via
// la.SolveDense), so identical training sets yield identical models —
// the property the optimizer's warm-re-run cache guarantee rests on.
func (m *Model) Fit(X [][]float64, Y [][]float64) error {
	if len(X) != len(Y) {
		return fmt.Errorf("surrogate: %d inputs vs %d target rows", len(X), len(Y))
	}
	if len(X) < m.MinTrainRows() {
		return fmt.Errorf("surrogate: %d rows < minimum %d", len(X), m.MinTrainRows())
	}
	feats := make([][]float64, len(X))
	h := sha256.New()
	var buf [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for i, x := range X {
		v, err := m.feats.Vector(x)
		if err != nil {
			return fmt.Errorf("surrogate: row %d: %w", i, err)
		}
		feats[i] = v
		if len(Y[i]) != len(m.targets) {
			return fmt.Errorf("surrogate: row %d has %d targets, want %d", i, len(Y[i]), len(m.targets))
		}
		for _, xv := range x {
			writeF(xv)
		}
		for _, yv := range Y[i] {
			writeF(yv)
		}
	}
	weights := make([][]float64, len(m.targets))
	col := make([]float64, len(X))
	for t := range m.targets {
		for i := range Y {
			col[i] = Y[i][t]
		}
		r := Ridge{Lambda: m.lambda}
		if err := r.Fit(feats, col); err != nil {
			return fmt.Errorf("surrogate: target %q: %w", m.targets[t], err)
		}
		weights[t] = r.Weights()
	}
	m.weights = weights
	m.rows = len(X)
	m.hash = hex.EncodeToString(h.Sum(nil))
	return nil
}

// Predict evaluates every target at one knob vector.
func (m *Model) Predict(x []float64) ([]float64, error) {
	if !m.Trained() {
		return nil, fmt.Errorf("surrogate: model not trained")
	}
	v, err := m.feats.Vector(x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(m.targets))
	for t := range m.targets {
		out[t] = la.Dot(m.weights[t], v)
	}
	return out, nil
}

// modelJSON is the serialized form: everything needed to reconstruct
// the model byte-for-byte, plus the training-set hash for provenance.
type modelJSON struct {
	Version  int         `json:"version"`
	Features FeatureMap  `json:"features"`
	Targets  []string    `json:"targets"`
	Lambda   float64     `json:"lambda"`
	Weights  [][]float64 `json:"weights,omitempty"`
	Rows     int         `json:"rows,omitempty"`
	Hash     string      `json:"training_hash,omitempty"`
}

// MarshalJSON serializes the model (weights + feature-map spec +
// training-set hash).
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Version: 1, Features: m.feats, Targets: m.targets,
		Lambda: m.lambda, Weights: m.weights, Rows: m.rows, Hash: m.hash,
	})
}

// UnmarshalJSON restores a serialized model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("surrogate: decode model: %w", err)
	}
	if mj.Version != 1 {
		return fmt.Errorf("surrogate: unsupported model version %d", mj.Version)
	}
	if len(mj.Features.Lo) == 0 || len(mj.Features.Lo) != len(mj.Features.Hi) {
		return fmt.Errorf("surrogate: decode model: malformed feature map")
	}
	if len(mj.Targets) == 0 {
		return fmt.Errorf("surrogate: decode model: no targets")
	}
	if mj.Weights != nil {
		if len(mj.Weights) != len(mj.Targets) {
			return fmt.Errorf("surrogate: decode model: %d weight vectors for %d targets", len(mj.Weights), len(mj.Targets))
		}
		want := mj.Features.Len()
		for t, w := range mj.Weights {
			if len(w) != want {
				return fmt.Errorf("surrogate: decode model: target %d has %d weights, want %d", t, len(w), want)
			}
		}
	}
	if mj.Lambda <= 0 {
		mj.Lambda = 1e-6
	}
	m.feats = mj.Features
	m.targets = mj.Targets
	m.lambda = mj.Lambda
	m.weights = mj.Weights
	m.rows = mj.Rows
	m.hash = mj.Hash
	return nil
}
