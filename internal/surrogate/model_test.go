package surrogate

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// truth is an exactly-quadratic 3-knob response the model must nail.
func truth(x []float64) []float64 {
	a, b, c := x[0], x[1], x[2]
	return []float64{
		2 + 0.5*a - 0.2*b + 0.1*a*a + 0.05*a*c,
		-1 + b*b - 0.3*c + 0.2*a*b,
	}
}

func trainSet(n int, seed int64) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()*10 - 5, rng.Float64() * 2, rng.Float64()*4 + 1}
		Y[i] = truth(X[i])
	}
	return X, Y
}

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel([]float64{-5, 0, 1}, []float64{5, 2, 5}, []string{"u", "v"}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelFitsQuadraticExactly(t *testing.T) {
	m := newTestModel(t)
	X, Y := trainSet(40, 1)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i)/10 - 2.5, float64(i%7) / 4, 1.5 + float64(i%5)/2}
		got, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want := truth(x)
		for tgt := range want {
			if math.Abs(got[tgt]-want[tgt]) > 1e-6 {
				t.Fatalf("point %d target %d: predicted %v want %v", i, tgt, got[tgt], want[tgt])
			}
		}
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	m := newTestModel(t)
	X, Y := trainSet(30, 2)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Trained() {
		t.Fatal("round-tripped model lost its weights")
	}
	if back.TrainingHash() != m.TrainingHash() || back.TrainingHash() == "" {
		t.Fatalf("training hash not preserved: %q vs %q", back.TrainingHash(), m.TrainingHash())
	}
	if back.Rows() != m.Rows() {
		t.Fatalf("rows not preserved: %d vs %d", back.Rows(), m.Rows())
	}
	x := []float64{1.25, 0.5, 3}
	a, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("target %d: prediction drifted across serialization: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestModelTrainingHashTracksData(t *testing.T) {
	m1, m2 := newTestModel(t), newTestModel(t)
	X, Y := trainSet(30, 3)
	if err := m1.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	Y[7][0] += 1e-9 // a single-bit-ish change must change the hash
	if err := m2.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if m1.TrainingHash() == m2.TrainingHash() {
		t.Fatal("training hash ignored a data change")
	}
}

func TestModelRejectsBadInput(t *testing.T) {
	m := newTestModel(t)
	if _, err := m.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("predict before fit should error")
	}
	X, Y := trainSet(m.MinTrainRows()-1, 4)
	if err := m.Fit(X, Y); err == nil {
		t.Fatal("fit below MinTrainRows should error")
	}
	X, Y = trainSet(30, 5)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	var bad Model
	if err := json.Unmarshal([]byte(`{"version":2}`), &bad); err == nil {
		t.Fatal("unknown version should error")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"features":{"lo":[0],"hi":[1]},"targets":["u"],"weights":[[1,2]]}`), &bad); err == nil {
		t.Fatal("weight-length mismatch should error")
	}
}
