// Package surrogate implements the L3 (predictive) layer of the twin
// taxonomy (Fig. 2): data-driven models trained on L4 simulation output.
// The paper notes that first-principles simulations "are extrapolative
// and can be effectively used for virtual prototyping", but too slow for
// real time, and that "an alternative approach is to use the simulations
// to generate data to train a machine-learned surrogate model, which has
// the advantage of being able to run in real-time". This package does
// exactly that: a ridge-regression surrogate over polynomial features,
// trained on steady-state sweeps of the cooling plant, predicting PUE
// and auxiliary power from (heat load, wet-bulb) in nanoseconds.
package surrogate

import (
	"fmt"
	"math"

	"exadigit/internal/cooling"
	"exadigit/internal/la"
)

// Ridge is ridge regression over a caller-supplied feature map.
type Ridge struct {
	// Lambda is the L2 regularization strength (0 → ordinary least
	// squares; the intercept is not penalized).
	Lambda float64

	weights []float64
}

// Fit solves (XᵀX + λI)w = Xᵀy over the design matrix rows.
func (r *Ridge) Fit(features [][]float64, targets []float64) error {
	n := len(features)
	if n == 0 || n != len(targets) {
		return fmt.Errorf("surrogate: %d rows vs %d targets", n, len(targets))
	}
	p := len(features[0])
	if p == 0 {
		return fmt.Errorf("surrogate: empty feature vectors")
	}
	gram := la.NewMatrix(p, p)
	rhs := make([]float64, p)
	for i, row := range features {
		if len(row) != p {
			return fmt.Errorf("surrogate: row %d has %d features, want %d", i, len(row), p)
		}
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				gram.Add(a, b, row[a]*row[b])
			}
			rhs[a] += row[a] * targets[i]
		}
	}
	for a := 1; a < p; a++ { // do not penalize the intercept (feature 0)
		gram.Add(a, a, r.Lambda)
	}
	w, err := la.SolveDense(gram, rhs)
	if err != nil {
		return fmt.Errorf("surrogate: %w", err)
	}
	r.weights = w
	return nil
}

// Predict evaluates the fitted model on one feature vector.
func (r *Ridge) Predict(features []float64) float64 {
	return la.Dot(r.weights, features)
}

// Weights returns the fitted coefficients (nil before Fit).
func (r *Ridge) Weights() []float64 { return r.weights }

// quadFeatures2 maps (a, b) to [1, a, b, a², b², ab] with inputs
// normalized by the training ranges for conditioning.
type quadFeatures2 struct {
	aLo, aHi, bLo, bHi float64
}

func (q quadFeatures2) vector(a, b float64) []float64 {
	an := norm(a, q.aLo, q.aHi)
	bn := norm(b, q.bLo, q.bHi)
	return []float64{1, an, bn, an * an, bn * bn, an * bn}
}

func norm(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return (v - lo) / (hi - lo)
}

// PUESurrogate predicts PUE and auxiliary cooling power from the total
// heat load and the outdoor wet bulb.
type PUESurrogate struct {
	feats   quadFeatures2
	pue     Ridge
	auxMW   Ridge
	trained bool

	// TrainingPoints records the L4 samples the model was fitted on.
	TrainingPoints []TrainingPoint
}

// TrainingPoint is one simulated steady state.
type TrainingPoint struct {
	HeatMW   float64
	WetBulbC float64
	PUE      float64
	AuxMW    float64
}

// TrainPUESurrogate sweeps the plant over the (heat, wet-bulb) grid,
// settling at each point, and fits the surrogate on the results. The
// plant is reused across points (warm start) so the sweep is cheap.
func TrainPUESurrogate(cfg cooling.Config, heatsMW, wetBulbsC []float64) (*PUESurrogate, error) {
	if len(heatsMW) < 2 || len(wetBulbsC) < 2 {
		return nil, fmt.Errorf("surrogate: need at least a 2×2 grid, got %d×%d",
			len(heatsMW), len(wetBulbsC))
	}
	plant, err := cooling.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &PUESurrogate{feats: quadFeatures2{
		aLo: minOf(heatsMW), aHi: maxOf(heatsMW),
		bLo: minOf(wetBulbsC), bHi: maxOf(wetBulbsC),
	}}
	var X [][]float64
	var yPUE, yAux []float64
	heat := make([]float64, cfg.NumCDUs)
	for _, wb := range wetBulbsC {
		for _, h := range heatsMW {
			for i := range heat {
				heat[i] = h * 1e6 / float64(cfg.NumCDUs)
			}
			in := cooling.Inputs{CDUHeatW: heat, WetBulbC: wb, ITPowerW: h * 1e6 / 0.945}
			if err := plant.SettleToSteadyState(in, 3*3600); err != nil {
				return nil, err
			}
			pt := TrainingPoint{
				HeatMW: h, WetBulbC: wb,
				PUE:   plant.PUE(),
				AuxMW: plant.AuxPowerW() / 1e6,
			}
			s.TrainingPoints = append(s.TrainingPoints, pt)
			X = append(X, s.feats.vector(h, wb))
			yPUE = append(yPUE, pt.PUE)
			yAux = append(yAux, pt.AuxMW)
		}
	}
	s.pue.Lambda, s.auxMW.Lambda = 1e-6, 1e-6
	if err := s.pue.Fit(X, yPUE); err != nil {
		return nil, err
	}
	if err := s.auxMW.Fit(X, yAux); err != nil {
		return nil, err
	}
	s.trained = true
	return s, nil
}

// Predict returns the PUE estimate at the given operating point.
func (s *PUESurrogate) Predict(heatMW, wetBulbC float64) (float64, error) {
	if !s.trained {
		return 0, fmt.Errorf("surrogate: not trained")
	}
	return s.pue.Predict(s.feats.vector(heatMW, wetBulbC)), nil
}

// PredictAuxMW returns the auxiliary-power estimate in MW.
func (s *PUESurrogate) PredictAuxMW(heatMW, wetBulbC float64) (float64, error) {
	if !s.trained {
		return 0, fmt.Errorf("surrogate: not trained")
	}
	return s.auxMW.Predict(s.feats.vector(heatMW, wetBulbC)), nil
}

// R2 computes the coefficient of determination of the PUE model on its
// own training points (an upper bound on held-out skill; tests check
// held-out points separately).
func (s *PUESurrogate) R2() float64 {
	if len(s.TrainingPoints) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range s.TrainingPoints {
		mean += p.PUE
	}
	mean /= float64(len(s.TrainingPoints))
	var ssRes, ssTot float64
	for _, p := range s.TrainingPoints {
		pred := s.pue.Predict(s.feats.vector(p.HeatMW, p.WetBulbC))
		ssRes += (p.PUE - pred) * (p.PUE - pred)
		ssTot += (p.PUE - mean) * (p.PUE - mean)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

func minOf(vals []float64) float64 {
	m := math.Inf(1)
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(vals []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}
