package surrogate

import (
	"math"
	"testing"

	"exadigit/internal/cooling"
)

func TestRidgeExactOnLinearData(t *testing.T) {
	// y = 3 + 2a − b over exact features: OLS recovers the coefficients.
	var X [][]float64
	var y []float64
	for a := 0.0; a < 4; a++ {
		for b := 0.0; b < 4; b++ {
			X = append(X, []float64{1, a, b})
			y = append(y, 3+2*a-b)
		}
	}
	var r Ridge
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w := r.Weights()
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if got := r.Predict([]float64{1, 2, 1}); math.Abs(got-6) > 1e-9 {
		t.Errorf("predict = %v, want 6", got)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 4, 6}
	var ols Ridge
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	reg := Ridge{Lambda: 10}
	if err := reg.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Weights()[1]) >= math.Abs(ols.Weights()[1]) {
		t.Errorf("ridge slope %v should shrink below OLS %v", reg.Weights()[1], ols.Weights()[1])
	}
}

func TestRidgeValidation(t *testing.T) {
	var r Ridge
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := r.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch should fail")
	}
	if err := r.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
	if err := r.Fit([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-width features should fail")
	}
}

func TestPUESurrogateTrainsAndGeneralizes(t *testing.T) {
	if testing.Short() {
		t.Skip("plant sweep")
	}
	s, err := TrainPUESurrogate(cooling.Frontier(),
		[]float64{6, 12, 18, 24},
		[]float64{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TrainingPoints) != 12 {
		t.Fatalf("training points = %d", len(s.TrainingPoints))
	}
	// The fit must explain the training sweep.
	if r2 := s.R2(); r2 < 0.9 {
		t.Errorf("R² = %v on the training sweep", r2)
	}
	// Held-out point: simulate the true plant at an off-grid operating
	// point and compare.
	plant, err := cooling.New(cooling.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 15e6 / 25
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 18, ITPowerW: 15e6 / 0.945}
	if err := plant.SettleToSteadyState(in, 3*3600); err != nil {
		t.Fatal(err)
	}
	truth := plant.PUE()
	pred, err := s.Predict(15, 18)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-truth) > 0.01 {
		t.Errorf("held-out PUE: surrogate %v vs plant %v", pred, truth)
	}
	aux, err := s.PredictAuxMW(15, 18)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aux-plant.AuxPowerW()/1e6) > 0.12 {
		t.Errorf("held-out aux: surrogate %v MW vs plant %v MW", aux, plant.AuxPowerW()/1e6)
	}
	// Physical sanity: warmer weather degrades PUE.
	cool, _ := s.Predict(15, 8)
	warm, _ := s.Predict(15, 26)
	if warm <= cool {
		t.Errorf("PUE should worsen with wet bulb: %v vs %v", warm, cool)
	}
}

func TestPUESurrogateValidation(t *testing.T) {
	if _, err := TrainPUESurrogate(cooling.Frontier(), []float64{10}, []float64{20}); err == nil {
		t.Error("1×1 grid should fail")
	}
	var s PUESurrogate
	if _, err := s.Predict(10, 20); err == nil {
		t.Error("untrained predict should fail")
	}
	if _, err := s.PredictAuxMW(10, 20); err == nil {
		t.Error("untrained aux predict should fail")
	}
}

func BenchmarkSurrogatePredict(b *testing.B) {
	// The L3 value proposition: inference in nanoseconds vs seconds of
	// L4 simulation.
	s := &PUESurrogate{feats: quadFeatures2{aLo: 5, aHi: 25, bLo: 5, bHi: 25}, trained: true}
	s.pue.weights = []float64{1.04, 0.01, 0.02, 0.001, 0.002, 0.0005}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Predict(15, 18); err != nil {
			b.Fatal(err)
		}
	}
}
