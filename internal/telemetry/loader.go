package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// JobLoader parses a bespoke telemetry format into the common JobRecord
// schema. The registry realizes the paper's pluggable reader architecture
// (§V), which has been used to ingest datasets such as Marconi100's PM100.
type JobLoader interface {
	// Name identifies the format (e.g. "exadigit-jsonl", "pm100-csv").
	Name() string
	// LoadJobs parses the stream into job records.
	LoadJobs(r io.Reader) ([]JobRecord, error)
}

var (
	loaderMu sync.RWMutex
	loaders  = map[string]JobLoader{}
)

// RegisterLoader adds a loader to the registry; re-registering a name
// replaces the previous loader.
func RegisterLoader(l JobLoader) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	loaders[l.Name()] = l
}

// LoaderByName fetches a registered loader.
func LoaderByName(name string) (JobLoader, error) {
	loaderMu.RLock()
	defer loaderMu.RUnlock()
	if l, ok := loaders[name]; ok {
		return l, nil
	}
	return nil, fmt.Errorf("telemetry: no loader %q (have %v)", name, LoaderNames())
}

// LoaderNames lists registered formats, sorted.
func LoaderNames() []string {
	loaderMu.RLock()
	defer loaderMu.RUnlock()
	names := make([]string, 0, len(loaders))
	for n := range loaders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// jsonlLoader is the native format.
type jsonlLoader struct{}

func (jsonlLoader) Name() string { return "exadigit-jsonl" }

func (jsonlLoader) LoadJobs(r io.Reader) ([]JobRecord, error) { return ReadJobsJSONL(r) }

// pm100Loader reads a PM100-style CSV: one row per job with average
// powers instead of full traces (job_id, nodes, submit, start, duration,
// avg_cpu_power, avg_gpu_power). Traces are expanded as constants — the
// same simplification the paper's synthetic workloads use (§III-B3).
type pm100Loader struct{}

func (pm100Loader) Name() string { return "pm100-csv" }

func (pm100Loader) LoadJobs(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("telemetry: empty pm100 file")
	}
	var jobs []JobRecord
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("telemetry: pm100 row %d has %d columns, want 7", i+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("telemetry: pm100 row %d id: %w", i+1, err)
		}
		nodes, err := strconv.Atoi(row[1])
		if err != nil || nodes <= 0 {
			return nil, fmt.Errorf("telemetry: pm100 row %d nodes invalid", i+1)
		}
		fl := make([]float64, 5)
		for k := 0; k < 5; k++ {
			if fl[k], err = strconv.ParseFloat(row[2+k], 64); err != nil {
				return nil, fmt.Errorf("telemetry: pm100 row %d col %d: %w", i+1, 2+k, err)
			}
		}
		submit, start, dur, cpuW, gpuW := fl[0], fl[1], fl[2], fl[3], fl[4]
		n := int(dur/15) + 1
		rec := JobRecord{
			JobName: fmt.Sprintf("pm100-%d", id), JobID: id, NodeCount: nodes,
			SubmitTime: submit, StartTime: start, WallTime: dur,
			CPUPowerW: make([]float64, n), GPUPowerW: make([]float64, n),
		}
		for k := 0; k < n; k++ {
			rec.CPUPowerW[k] = cpuW
			rec.GPUPowerW[k] = gpuW
		}
		jobs = append(jobs, rec)
	}
	return jobs, nil
}

func init() {
	RegisterLoader(jsonlLoader{})
	RegisterLoader(pm100Loader{})
}
