package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the streaming (NDJSON) telemetry format: one JSON
// object per line, discriminated by a "type" field —
//
//	{"type":"meta","epoch":"...","series_dt_sec":15}
//	{"type":"series","time_sec":15,"measured_power_w":8.1e6,"wetbulb_c":20}
//	{"type":"job","job_name":"...","job_id":1,...}
//
// Unlike Dataset.Save, a StreamWriter emits samples incrementally while
// a simulation is still running, so long replays and sweep services
// never materialize the dense export slices; ReadStream reassembles the
// stream into the same Dataset the in-memory ExportTelemetry produces
// (bit-for-bit — Go's JSON float encoding round-trips float64 exactly).

// StreamWriter emits a telemetry dataset as NDJSON, incrementally.
// Errors are sticky: the first write failure is retained and returned by
// every subsequent call and by Flush, so hot loops can emit without
// checking each line.
type StreamWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

type streamMeta struct {
	Type        string  `json:"type"`
	Epoch       string  `json:"epoch"`
	SeriesDtSec float64 `json:"series_dt_sec"`
}

type streamSeries struct {
	Type string `json:"type"`
	SeriesPoint
}

type streamJob struct {
	Type string `json:"type"`
	JobRecord
}

// NewStreamWriter starts an NDJSON telemetry stream on w, emitting the
// meta line immediately.
func NewStreamWriter(w io.Writer, epoch string, seriesDtSec float64) *StreamWriter {
	bw := bufio.NewWriter(w)
	s := &StreamWriter{bw: bw, enc: json.NewEncoder(bw)}
	s.encode(streamMeta{Type: "meta", Epoch: epoch, SeriesDtSec: seriesDtSec})
	return s
}

func (s *StreamWriter) encode(v any) error {
	if s.err != nil {
		return s.err
	}
	s.err = s.enc.Encode(v)
	return s.err
}

// Series appends one system-level sample line.
func (s *StreamWriter) Series(p SeriesPoint) error {
	return s.encode(streamSeries{Type: "series", SeriesPoint: p})
}

// Job appends one Table II job-record line.
func (s *StreamWriter) Job(r JobRecord) error {
	return s.encode(streamJob{Type: "job", JobRecord: r})
}

// Err returns the first error the stream hit, if any.
func (s *StreamWriter) Err() error { return s.err }

// Flush drains the buffer and returns the stream's sticky error state.
func (s *StreamWriter) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// WriteStream emits a whole in-memory dataset in the NDJSON format —
// the non-incremental convenience used for persisted datasets and round-
// trip tests.
func WriteStream(w io.Writer, d *Dataset) error {
	s := NewStreamWriter(w, d.Epoch, d.SeriesDtSec)
	for i := range d.Jobs {
		s.Job(d.Jobs[i])
	}
	for _, p := range d.Series {
		s.Series(p)
	}
	return s.Flush()
}

// ReadStream reassembles an NDJSON telemetry stream into a Dataset.
// Line order is free: series and job lines may interleave (a live run
// streams series during the run and jobs at the end); the meta line, if
// present, must come first.
func ReadStream(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(r)
	for line := 0; ; line++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return d, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
		}
		switch probe.Type {
		case "meta":
			var m streamMeta
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
			}
			if line != 0 {
				return nil, fmt.Errorf("telemetry: stream line %d: meta not first", line)
			}
			d.Epoch, d.SeriesDtSec = m.Epoch, m.SeriesDtSec
		case "series":
			var p streamSeries
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
			}
			d.Series = append(d.Series, p.SeriesPoint)
		case "job":
			var j streamJob
			if err := json.Unmarshal(raw, &j); err != nil {
				return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
			}
			d.Jobs = append(d.Jobs, j.JobRecord)
		default:
			return nil, fmt.Errorf("telemetry: stream line %d: unknown type %q", line, probe.Type)
		}
	}
}
