package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// swfLoader reads the Standard Workload Format used by the Parallel
// Workloads Archive — the lingua franca for published HPC job traces and
// a natural target for the paper's pluggable reader architecture (§V).
//
// SWF is line-oriented: comments start with ';', data rows carry 18
// whitespace-separated fields. The loader consumes the fields RAPS needs:
//
//	1  job number          4  run time (s)
//	2  submit time (s)     5  allocated processors → node count
//	3  wait time (s)       6  average CPU time used → utilization proxy
//
// SWF has no GPU accounting, so GPU power defaults to idle unless the
// header carries a "; GPUPowerW:" annotation.
type swfLoader struct{}

// Name implements JobLoader.
func (swfLoader) Name() string { return "swf" }

// LoadJobs implements JobLoader.
func (swfLoader) LoadJobs(r io.Reader) ([]JobRecord, error) {
	var jobs []JobRecord
	gpuPowerW := 88.0 // idle MI250X unless annotated
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if v, ok := headerFloat(line, "GPUPowerW:"); ok {
				gpuPowerW = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 11 {
			return nil, fmt.Errorf("telemetry: swf line %d has %d fields, want ≥11", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d job id: %w", lineNo, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d submit: %w", lineNo, err)
		}
		wait, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d wait: %w", lineNo, err)
		}
		runTime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d run time: %w", lineNo, err)
		}
		procs, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d processors: %w", lineNo, err)
		}
		avgCPU, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: swf line %d cpu time: %w", lineNo, err)
		}
		if runTime <= 0 || procs <= 0 {
			continue // SWF uses -1 for cancelled/unknown jobs
		}
		// CPU utilization = average CPU seconds per wall second, clamped.
		util := 0.0
		if runTime > 0 && avgCPU > 0 {
			util = avgCPU / runTime
			if util > 1 {
				util = 1
			}
		}
		n := int(runTime/15) + 1
		rec := JobRecord{
			JobName:    fmt.Sprintf("swf-%d", id),
			JobID:      id,
			NodeCount:  procs,
			SubmitTime: submit,
			StartTime:  submit + wait,
			WallTime:   runTime,
			CPUPowerW:  make([]float64, n),
			GPUPowerW:  make([]float64, n),
		}
		cpuW := PowerFromUtil(util, 90, 280)
		for k := 0; k < n; k++ {
			rec.CPUPowerW[k] = cpuW
			rec.GPUPowerW[k] = gpuPowerW
		}
		jobs = append(jobs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("telemetry: swf stream contained no usable jobs")
	}
	return jobs, nil
}

func headerFloat(line, key string) (float64, bool) {
	idx := strings.Index(line, key)
	if idx < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(line[idx+len(key):])
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func init() {
	RegisterLoader(swfLoader{})
}
