// Package telemetry implements the Table II data schemas used for
// verification and validation (§IV): job records carrying 15 s CPU/GPU
// power traces, system-level measured-power series, per-CDU cooling
// series, and wet-bulb weather series. It provides JSONL/CSV persistence,
// a pluggable loader registry (the paper's "pluggable architecture ...
// for reading different types of bespoke telemetry datasets", §V), and
// the power↔utilization conversion RAPS relies on (footnote 1: "Since our
// system telemetry lacks CPU/GPU utilization, we linearly interpolate
// power to utilization").
//
// ORNL's production telemetry is not public; datasets here are emitted by
// the simulator itself (optionally with sensor noise) and replayed
// through the same code paths the paper uses for its 183-day study.
package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"exadigit/internal/job"
)

// JobRecord is the Table II "RAPS inputs" schema: job name, id, node
// count, start time, and CPU/GPU power traces at 15 s resolution.
type JobRecord struct {
	JobName   string `json:"job_name"`
	JobID     int    `json:"job_id"`
	NodeCount int    `json:"node_count"`
	// SubmitTime and StartTime are seconds from dataset epoch.
	SubmitTime float64 `json:"submit_time"`
	StartTime  float64 `json:"start_time"`
	// WallTime is the job duration in seconds.
	WallTime float64 `json:"wall_time"`
	// CPUPowerW and GPUPowerW are per-device power traces (15 s quanta):
	// one CPU and the per-GPU average, matching how Frontier telemetry
	// reports them.
	CPUPowerW []float64 `json:"cpu_power"`
	GPUPowerW []float64 `json:"gpu_power"`
}

// SeriesPoint is one sample of the system-level validation series. The
// JSON tags define the NDJSON streaming schema (stream.go).
type SeriesPoint struct {
	TimeSec        float64 `json:"time_sec"`         // seconds from dataset epoch
	MeasuredPowerW float64 `json:"measured_power_w"` // total system power ("measured power", 1 s in Table II)
	WetBulbC       float64 `json:"wetbulb_c"`        // outdoor wet bulb (60 s in Table II)
	// PartPowerW is the per-partition power split of a multi-partition
	// system (§V), in spec partition order; omitted on single-partition
	// captures so their NDJSON stays byte-identical to the pre-partition
	// schema.
	PartPowerW []float64 `json:"part_power_w,omitempty"`
}

// Dataset is a replayable telemetry capture.
type Dataset struct {
	// Epoch labels the capture (e.g. "2024-01-18"); informational.
	Epoch string
	// SeriesDtSec is the sampling period of Series.
	SeriesDtSec float64
	Jobs        []JobRecord
	Series      []SeriesPoint
}

// UtilFromPower inverts the linear power model: the utilization that
// produces powerW between idleW and maxW, clamped to [0, 1].
func UtilFromPower(powerW, idleW, maxW float64) float64 {
	if maxW <= idleW {
		return 0
	}
	u := (powerW - idleW) / (maxW - idleW)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// PowerFromUtil applies the linear power model.
func PowerFromUtil(util, idleW, maxW float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return idleW + util*(maxW-idleW)
}

// ToJob converts a record into a schedulable job, translating the power
// traces to utilization traces with the given per-device idle/max powers
// and pinning the replay start time.
func (r *JobRecord) ToJob(cpuIdle, cpuMax, gpuIdle, gpuMax float64) *job.Job {
	j := job.New(r.JobID, r.JobName, r.NodeCount, r.WallTime, r.SubmitTime)
	j.ReplayStart = r.StartTime
	j.CPUTrace = make([]float64, len(r.CPUPowerW))
	for i, p := range r.CPUPowerW {
		j.CPUTrace[i] = UtilFromPower(p, cpuIdle, cpuMax)
	}
	j.GPUTrace = make([]float64, len(r.GPUPowerW))
	for i, p := range r.GPUPowerW {
		j.GPUTrace[i] = UtilFromPower(p, gpuIdle, gpuMax)
	}
	return j
}

// FromJob converts a scheduled job into a telemetry record with power
// traces (the inverse of ToJob).
func FromJob(j *job.Job, cpuIdle, cpuMax, gpuIdle, gpuMax float64) JobRecord {
	r := JobRecord{
		JobName:    j.Name,
		JobID:      j.ID,
		NodeCount:  j.NodeCount,
		SubmitTime: j.SubmitTime,
		StartTime:  j.StartTime,
		WallTime:   j.WallTimeSec,
		CPUPowerW:  make([]float64, len(j.CPUTrace)),
		GPUPowerW:  make([]float64, len(j.GPUTrace)),
	}
	for i, u := range j.CPUTrace {
		r.CPUPowerW[i] = PowerFromUtil(u, cpuIdle, cpuMax)
	}
	for i, u := range j.GPUTrace {
		r.GPUPowerW[i] = PowerFromUtil(u, gpuIdle, gpuMax)
	}
	return r
}

// AddSensorNoise perturbs the measured-power series with multiplicative
// Gaussian noise of the given relative sigma, emulating the meter error
// between the digital twin and the physical system. Deterministic per
// seed.
func (d *Dataset) AddSensorNoise(relSigma float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range d.Series {
		d.Series[i].MeasuredPowerW *= 1 + relSigma*rng.NormFloat64()
	}
}

// Save writes the dataset to dir as jobs.jsonl + series.csv + meta.json.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := WriteJobsJSONL(jf, d.Jobs); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "series.csv"))
	if err != nil {
		return err
	}
	defer sf.Close()
	if err := WriteSeriesCSV(sf, d.Series); err != nil {
		return err
	}
	meta := map[string]any{"epoch": d.Epoch, "series_dt_sec": d.SeriesDtSec}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), mb, 0o644)
}

// Load reads a dataset saved by Save.
func Load(dir string) (*Dataset, error) {
	d := &Dataset{}
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta struct {
		Epoch       string  `json:"epoch"`
		SeriesDtSec float64 `json:"series_dt_sec"`
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("telemetry: bad meta.json: %w", err)
	}
	d.Epoch, d.SeriesDtSec = meta.Epoch, meta.SeriesDtSec

	jf, err := os.Open(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	defer jf.Close()
	if d.Jobs, err = ReadJobsJSONL(jf); err != nil {
		return nil, err
	}
	sf, err := os.Open(filepath.Join(dir, "series.csv"))
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	if d.Series, err = ReadSeriesCSV(sf); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteJobsJSONL streams job records as one JSON object per line.
func WriteJobsJSONL(w io.Writer, jobs []JobRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range jobs {
		if err := enc.Encode(&jobs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJobsJSONL parses a JSONL job stream.
func ReadJobsJSONL(r io.Reader) ([]JobRecord, error) {
	var jobs []JobRecord
	dec := json.NewDecoder(r)
	for {
		var rec JobRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return jobs, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: job record %d: %w", len(jobs), err)
		}
		if rec.NodeCount <= 0 {
			return nil, fmt.Errorf("telemetry: job record %d: non-positive node count", len(jobs))
		}
		jobs = append(jobs, rec)
	}
}

// WriteSeriesCSV writes the series with a header row.
func WriteSeriesCSV(w io.Writer, pts []SeriesPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_sec", "measured_power_w", "wetbulb_c"}); err != nil {
		return err
	}
	row := make([]string, 3)
	for _, p := range pts {
		row[0] = strconv.FormatFloat(p.TimeSec, 'g', -1, 64)
		row[1] = strconv.FormatFloat(p.MeasuredPowerW, 'g', -1, 64)
		row[2] = strconv.FormatFloat(p.WetBulbC, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses a series written by WriteSeriesCSV.
func ReadSeriesCSV(r io.Reader) ([]SeriesPoint, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("telemetry: empty series file")
	}
	var pts []SeriesPoint
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("telemetry: series row %d has %d columns", i+1, len(row))
		}
		var p SeriesPoint
		if p.TimeSec, err = strconv.ParseFloat(row[0], 64); err != nil {
			return nil, fmt.Errorf("telemetry: series row %d time: %w", i+1, err)
		}
		if p.MeasuredPowerW, err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("telemetry: series row %d power: %w", i+1, err)
		}
		if p.WetBulbC, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("telemetry: series row %d wetbulb: %w", i+1, err)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
