package telemetry

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"exadigit/internal/job"
)

func TestUtilPowerRoundTrip(t *testing.T) {
	for _, u := range []float64{0, 0.25, 0.5, 0.79, 1} {
		p := PowerFromUtil(u, 88, 560)
		back := UtilFromPower(p, 88, 560)
		if math.Abs(back-u) > 1e-12 {
			t.Errorf("u=%v → p=%v → %v", u, p, back)
		}
	}
}

func TestUtilFromPowerClamps(t *testing.T) {
	if UtilFromPower(50, 88, 560) != 0 {
		t.Error("below idle should clamp to 0")
	}
	if UtilFromPower(999, 88, 560) != 1 {
		t.Error("above max should clamp to 1")
	}
	if UtilFromPower(100, 100, 100) != 0 {
		t.Error("degenerate range should return 0")
	}
	if PowerFromUtil(-1, 88, 560) != 88 || PowerFromUtil(2, 88, 560) != 560 {
		t.Error("PowerFromUtil should clamp utilization")
	}
}

func TestJobRecordConversionRoundTrip(t *testing.T) {
	j := job.New(42, "hpl", 9216, 3600, 100)
	if err := j.ApplyFingerprint(job.FPHPL); err != nil {
		t.Fatal(err)
	}
	j.StartTime = 150
	rec := FromJob(j, 90, 280, 88, 560)
	if rec.JobID != 42 || rec.NodeCount != 9216 || rec.WallTime != 3600 {
		t.Errorf("record = %+v", rec)
	}
	back := rec.ToJob(90, 280, 88, 560)
	if back.ReplayStart != 150 {
		t.Errorf("replay start = %v", back.ReplayStart)
	}
	if len(back.CPUTrace) != len(j.CPUTrace) {
		t.Fatalf("trace lengths differ")
	}
	for i := range j.CPUTrace {
		if math.Abs(back.CPUTrace[i]-j.CPUTrace[i]) > 1e-12 {
			t.Fatalf("cpu trace diverged at %d: %v vs %v", i, back.CPUTrace[i], j.CPUTrace[i])
		}
		if math.Abs(back.GPUTrace[i]-j.GPUTrace[i]) > 1e-12 {
			t.Fatalf("gpu trace diverged at %d", i)
		}
	}
}

func TestJobsJSONLRoundTrip(t *testing.T) {
	jobs := []JobRecord{
		{JobName: "a", JobID: 1, NodeCount: 4, SubmitTime: 0, StartTime: 5, WallTime: 60,
			CPUPowerW: []float64{100, 150}, GPUPowerW: []float64{200, 300}},
		{JobName: "b", JobID: 2, NodeCount: 9216, SubmitTime: 10, StartTime: 20, WallTime: 120,
			CPUPowerW: []float64{152.7}, GPUPowerW: []float64{460.9}},
	}
	var buf bytes.Buffer
	if err := WriteJobsJSONL(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].JobName != "a" || got[1].NodeCount != 9216 {
		t.Errorf("round trip = %+v", got)
	}
	if got[1].GPUPowerW[0] != 460.9 {
		t.Errorf("trace lost: %v", got[1].GPUPowerW)
	}
}

func TestReadJobsJSONLRejectsBadRecords(t *testing.T) {
	if _, err := ReadJobsJSONL(strings.NewReader(`{"job_id":1,"node_count":0}`)); err == nil {
		t.Error("zero node count should fail")
	}
	if _, err := ReadJobsJSONL(strings.NewReader(`{garbage`)); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	pts := []SeriesPoint{
		{TimeSec: 0, MeasuredPowerW: 17e6, WetBulbC: 18.5},
		{TimeSec: 15, MeasuredPowerW: 17.2e6, WetBulbC: 18.6},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].MeasuredPowerW != 17.2e6 || got[0].WetBulbC != 18.5 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestSeriesCSVErrors(t *testing.T) {
	if _, err := ReadSeriesCSV(strings.NewReader("")); err == nil {
		t.Error("empty file should fail")
	}
	if _, err := ReadSeriesCSV(strings.NewReader("h1,h2,h3\nx,1,2\n")); err == nil {
		t.Error("non-numeric time should fail")
	}
	if _, err := ReadSeriesCSV(strings.NewReader("h1,h2\n1,2\n")); err == nil {
		t.Error("wrong column count should fail")
	}
}

func TestDatasetSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "capture")
	d := &Dataset{
		Epoch:       "2024-01-18",
		SeriesDtSec: 15,
		Jobs: []JobRecord{{JobName: "x", JobID: 1, NodeCount: 2, WallTime: 30,
			CPUPowerW: []float64{100}, GPUPowerW: []float64{200}}},
		Series: []SeriesPoint{{TimeSec: 0, MeasuredPowerW: 1e6, WetBulbC: 20}},
	}
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != "2024-01-18" || got.SeriesDtSec != 15 {
		t.Errorf("meta = %+v", got)
	}
	if len(got.Jobs) != 1 || len(got.Series) != 1 {
		t.Errorf("content lost: %d jobs, %d series", len(got.Jobs), len(got.Series))
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestAddSensorNoise(t *testing.T) {
	mk := func() *Dataset {
		d := &Dataset{SeriesDtSec: 15}
		for i := 0; i < 1000; i++ {
			d.Series = append(d.Series, SeriesPoint{TimeSec: float64(i) * 15, MeasuredPowerW: 17e6})
		}
		return d
	}
	a := mk()
	a.AddSensorNoise(0.01, 7)
	var sum, sumSq float64
	for _, p := range a.Series {
		rel := p.MeasuredPowerW/17e6 - 1
		sum += rel
		sumSq += rel * rel
	}
	mean := sum / 1000
	std := math.Sqrt(sumSq/1000 - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Errorf("noise mean = %v", mean)
	}
	if math.Abs(std-0.01) > 0.002 {
		t.Errorf("noise std = %v, want 0.01", std)
	}
	// Determinism.
	b := mk()
	b.AddSensorNoise(0.01, 7)
	for i := range a.Series {
		if a.Series[i].MeasuredPowerW != b.Series[i].MeasuredPowerW {
			t.Fatal("noise must be deterministic per seed")
		}
	}
}

func TestLoaderRegistry(t *testing.T) {
	names := LoaderNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["exadigit-jsonl"] || !found["pm100-csv"] {
		t.Fatalf("built-in loaders missing: %v", names)
	}
	if _, err := LoaderByName("nope"); err == nil {
		t.Error("unknown loader should error")
	}
	l, err := LoaderByName("exadigit-jsonl")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := l.LoadJobs(strings.NewReader(`{"job_name":"a","job_id":1,"node_count":2,"wall_time":30}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Errorf("jsonl loader returned %d jobs", len(jobs))
	}
}

func TestPM100Loader(t *testing.T) {
	l, err := LoaderByName("pm100-csv")
	if err != nil {
		t.Fatal(err)
	}
	csvData := "job_id,nodes,submit,start,duration,avg_cpu_power,avg_gpu_power\n" +
		"7,16,0,30,120,150,400\n"
	jobs, err := l.LoadJobs(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("%d jobs", len(jobs))
	}
	j := jobs[0]
	if j.JobID != 7 || j.NodeCount != 16 || j.StartTime != 30 || j.WallTime != 120 {
		t.Errorf("job = %+v", j)
	}
	// Constant traces covering the duration.
	if len(j.CPUPowerW) != 9 {
		t.Errorf("trace length = %d, want 9 (120 s / 15 s + 1)", len(j.CPUPowerW))
	}
	for _, p := range j.CPUPowerW {
		if p != 150 {
			t.Fatal("cpu trace not constant")
		}
	}
	// Malformed rows.
	if _, err := l.LoadJobs(strings.NewReader("h\nbad")); err == nil {
		t.Error("bad pm100 should fail")
	}
	if _, err := l.LoadJobs(strings.NewReader("")); err == nil {
		t.Error("empty pm100 should fail")
	}
	if _, err := l.LoadJobs(strings.NewReader("h1,h2,h3,h4,h5,h6,h7\n1,0,0,0,1,1,1\n")); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestSWFLoader(t *testing.T) {
	l, err := LoaderByName("swf")
	if err != nil {
		t.Fatal(err)
	}
	trace := `; Parallel Workloads Archive style header
; GPUPowerW: 460.9
1  0    30  120  16  60  -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2  100  0   600  128 600 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3  200  10  -1   4   10  -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
`
	jobs, err := l.LoadJobs(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has run time -1 (cancelled) and is skipped.
	if len(jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(jobs))
	}
	j := jobs[0]
	if j.JobID != 1 || j.NodeCount != 16 || j.SubmitTime != 0 || j.StartTime != 30 || j.WallTime != 120 {
		t.Errorf("job 1 = %+v", j)
	}
	// Utilization 60/120 = 0.5 → CPU power 90+0.5·190 = 185 W.
	if math.Abs(j.CPUPowerW[0]-185) > 1e-9 {
		t.Errorf("cpu power = %v, want 185", j.CPUPowerW[0])
	}
	// GPU power from the header annotation.
	if j.GPUPowerW[0] != 460.9 {
		t.Errorf("gpu power = %v, want 460.9 (annotated)", j.GPUPowerW[0])
	}
	// Job 2: fully busy CPU (600/600 → clamped 1.0 → 280 W).
	if jobs[1].CPUPowerW[0] != 280 {
		t.Errorf("job 2 cpu power = %v", jobs[1].CPUPowerW[0])
	}
	// Errors.
	if _, err := l.LoadJobs(strings.NewReader("")); err == nil {
		t.Error("empty swf should fail")
	}
	if _, err := l.LoadJobs(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short row should fail")
	}
	if _, err := l.LoadJobs(strings.NewReader("x 0 0 10 4 5 0 0 0 0 0\n")); err == nil {
		t.Error("bad id should fail")
	}
}

func TestSWFRoundTripThroughRAPSSchema(t *testing.T) {
	l, _ := LoaderByName("swf")
	jobs, err := l.LoadJobs(strings.NewReader("7 50 25 300 64 150 0 0 0 0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0].ToJob(90, 280, 88, 560)
	if j.ReplayStart != 75 {
		t.Errorf("replay start = %v, want submit+wait = 75", j.ReplayStart)
	}
	cu, gu := j.UtilAt(0)
	if math.Abs(cu-0.5) > 1e-9 {
		t.Errorf("cpu util = %v, want 0.5", cu)
	}
	if gu != 0 {
		t.Errorf("gpu util = %v, want 0 (idle default)", gu)
	}
}

func TestJobsJSONLRoundTripProperty(t *testing.T) {
	// Arbitrary job records survive the JSONL round trip bit-exactly.
	f := func(id int, nodes uint8, submit, wall float64, cpu, gpu []float64) bool {
		rec := JobRecord{
			JobName:    "prop",
			JobID:      id,
			NodeCount:  int(nodes%200) + 1,
			SubmitTime: math.Mod(math.Abs(submit), 1e6),
			WallTime:   math.Mod(math.Abs(wall), 1e5),
			CPUPowerW:  sanitize(cpu),
			GPUPowerW:  sanitize(gpu),
		}
		var buf bytes.Buffer
		if err := WriteJobsJSONL(&buf, []JobRecord{rec}); err != nil {
			return false
		}
		got, err := ReadJobsJSONL(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		if g.JobID != rec.JobID || g.NodeCount != rec.NodeCount ||
			g.SubmitTime != rec.SubmitTime || g.WallTime != rec.WallTime {
			return false
		}
		if len(g.CPUPowerW) != len(rec.CPUPowerW) || len(g.GPUPowerW) != len(rec.GPUPowerW) {
			return false
		}
		for i := range rec.CPUPowerW {
			if g.CPUPowerW[i] != rec.CPUPowerW[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize strips non-finite values (JSON cannot carry them) and bounds
// length; the telemetry schema only ever holds finite watts.
func sanitize(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(math.Abs(v), 1e4))
		if len(out) == 64 {
			break
		}
	}
	return out
}
