// Package thermal implements the lumped thermal components of the cooling
// model (§III-C4): well-mixed thermal volumes (the ODE states), ε-NTU
// counterflow heat exchangers (the CDU HEX-1600s and the intermediate
// EHX1-5), an evaporative cooling-tower cell model driven by wet-bulb
// temperature, and cold-plate thermal-resistance curves for estimating
// device temperatures and detecting thermal throttling (one of the
// requirements-analysis use cases in §III-A).
package thermal

import (
	"math"

	"exadigit/internal/units"
)

// Volume is a well-mixed thermal capacitance holding mass kg of water at
// temperature T (°C). It contributes one ODE state:
//
//	m·cp·dT/dt = ṁ·cp·(Tin − T) + Qheat
type Volume struct {
	Mass float64 // kg of water
	T    float64 // current temperature, °C
}

// DTdt returns dT/dt for inlet flow mdot (kg/s) at temperature tIn with
// additional heat input qHeat (W, positive heats the volume).
func (v *Volume) DTdt(mdot, tIn, qHeat float64) float64 {
	if v.Mass <= 0 {
		return 0
	}
	cp := units.WaterSpecificHeat(v.T)
	return (mdot*cp*(tIn-v.T) + qHeat) / (v.Mass * cp)
}

// HeatExchanger is a counterflow ε-NTU heat exchanger. UA varies with
// flow on each side as h ∝ ṁ^0.8 (Dittus–Boelter scaling), anchored at a
// nominal design point.
type HeatExchanger struct {
	UANominal float64 // overall conductance at design flows, W/°C
	MdotHotN  float64 // design hot-side flow, kg/s
	MdotColdN float64 // design cold-side flow, kg/s
}

// UA returns the overall conductance at the given flows. Each film
// coefficient scales as (ṁ/ṁ_N)^0.8 and the two films contribute equal
// resistance at design.
func (h HeatExchanger) UA(mdotHot, mdotCold float64) float64 {
	if mdotHot <= 0 || mdotCold <= 0 {
		return 0
	}
	rh := math.Pow(mdotHot/h.MdotHotN, 0.8)
	rc := math.Pow(mdotCold/h.MdotColdN, 0.8)
	// 1/UA = 0.5/UA_N·(1/rh) + 0.5/UA_N·(1/rc)
	return h.UANominal * 2 / (1/rh + 1/rc)
}

// Effectiveness returns the counterflow ε for the given capacity rates.
func Effectiveness(ntu, cr float64) float64 {
	if ntu <= 0 {
		return 0
	}
	if cr < 0 {
		cr = 0
	}
	if math.Abs(cr-1) < 1e-9 {
		return ntu / (1 + ntu)
	}
	e := math.Exp(-ntu * (1 - cr))
	return (1 - e) / (1 - cr*e)
}

// Transfer computes the heat flow (W) from hot to cold for the given
// inlet temperatures and mass flows, plus the two outlet temperatures.
// Zero flow on either side transfers nothing.
func (h HeatExchanger) Transfer(tHotIn, mdotHot, tColdIn, mdotCold float64) (q, tHotOut, tColdOut float64) {
	return h.TransferUA(h.UA(mdotHot, mdotCold), tHotIn, mdotHot, tColdIn, mdotCold)
}

// TransferUA is Transfer with the overall conductance supplied by the
// caller. UA depends only on the mass flows (not on temperature), so a
// hot loop whose hydraulic solution is frozen across an integration
// period can evaluate UA once and skip its two Pow calls per stage
// evaluation — the dominant cost of the cooling model's derivative
// sweep. TransferUA(h.UA(mh, mc), ...) is exactly Transfer(...).
func (h HeatExchanger) TransferUA(ua, tHotIn, mdotHot, tColdIn, mdotCold float64) (q, tHotOut, tColdOut float64) {
	tHotOut, tColdOut = tHotIn, tColdIn
	if mdotHot <= 0 || mdotCold <= 0 || tHotIn <= tColdIn {
		return 0, tHotOut, tColdOut
	}
	cpH := units.WaterSpecificHeat(tHotIn)
	cpC := units.WaterSpecificHeat(tColdIn)
	cHot := mdotHot * cpH
	cCold := mdotCold * cpC
	cMin, cMax := cHot, cCold
	if cCold < cHot {
		cMin, cMax = cCold, cHot
	}
	eps := Effectiveness(ua/cMin, cMin/cMax)
	q = eps * cMin * (tHotIn - tColdIn)
	tHotOut = tHotIn - q/cHot
	tColdOut = tColdIn + q/cCold
	return q, tHotOut, tColdOut
}

// CoolingTower models one evaporative tower cell: the leaving-water
// temperature approaches the ambient wet-bulb with an effectiveness that
// improves with fan speed and degrades with water loading.
type CoolingTower struct {
	EpsNominal  float64 // effectiveness at design flow, full fan (0..1)
	MdotNominal float64 // design water flow per cell, kg/s
	FanExp      float64 // effectiveness exponent on fan speed (≈0.4)
	LoadExp     float64 // effectiveness exponent on (mdotN/mdot) (≈0.35)
	FanPowerMax float64 // fan power per cell at full speed, W
}

// Effectiveness returns the cell effectiveness for fan speed (0..1) and
// water flow mdot.
func (c CoolingTower) Effectiveness(fanSpeed, mdot float64) float64 {
	if fanSpeed <= 0 || mdot <= 0 {
		return 0.05 // natural-draft trickle
	}
	eps := c.EpsNominal * math.Pow(fanSpeed, c.FanExp) * math.Pow(c.MdotNominal/mdot, c.LoadExp)
	return units.Clamp(eps, 0.05, 0.98)
}

// Outlet returns the leaving-water temperature for water entering at tIn
// with ambient wet-bulb tWb.
func (c CoolingTower) Outlet(tIn, tWb, fanSpeed, mdot float64) float64 {
	if tIn <= tWb {
		return tIn
	}
	return c.OutletEff(c.Effectiveness(fanSpeed, mdot), tIn, tWb)
}

// OutletEff is Outlet with the cell effectiveness supplied by the
// caller (see HeatExchanger.TransferUA for the precomputation rationale:
// effectiveness depends on fan speed and flow, both frozen across an
// integration period).
func (c CoolingTower) OutletEff(eps, tIn, tWb float64) float64 {
	if tIn <= tWb {
		return tIn
	}
	return tIn - eps*(tIn-tWb)
}

// HeatRejected returns the heat rejected (W) by one cell.
func (c CoolingTower) HeatRejected(tIn, tWb, fanSpeed, mdot float64) float64 {
	tOut := c.Outlet(tIn, tWb, fanSpeed, mdot)
	cp := units.WaterSpecificHeat(tIn)
	return mdot * cp * (tIn - tOut)
}

// FanPower returns the fan power (W) at the given speed using the cube
// law plus a small parasitic floor while running.
func (c CoolingTower) FanPower(fanSpeed float64) float64 {
	if fanSpeed <= 0 {
		return 0
	}
	s := units.Clamp(fanSpeed, 0, 1.1)
	return c.FanPowerMax * (0.02 + 0.98*s*s*s)
}

// ColdPlate models the conduction path from a device (CPU or GPU die) to
// the coolant: Tdevice = Tcoolant + Rth(q)·P, with the convective part of
// the resistance falling as flow^0.8.
type ColdPlate struct {
	RConduction float64 // fixed conduction/spreading resistance, °C/W
	RConvNom    float64 // convective resistance at nominal flow, °C/W
	QNominal    float64 // nominal coolant flow, m³/s
}

// Rth returns the total thermal resistance at coolant flow q (m³/s).
func (p ColdPlate) Rth(q float64) float64 {
	if q <= 0 {
		return p.RConduction + p.RConvNom*100 // stagnant: very poor
	}
	return p.RConduction + p.RConvNom*math.Pow(p.QNominal/q, 0.8)
}

// DeviceTemp returns the device temperature for power watts dissipated
// into coolant at tCoolant with flow q.
func (p ColdPlate) DeviceTemp(powerW, tCoolant, q float64) float64 {
	return tCoolant + p.Rth(q)*powerW
}

// Throttles reports whether the device exceeds limit °C at the given
// operating point — the early thermal-throttling detection use case.
func (p ColdPlate) Throttles(powerW, tCoolant, q, limit float64) bool {
	return p.DeviceTemp(powerW, tCoolant, q) > limit
}

// MixStreams returns the temperature of the mixture of two water streams.
func MixStreams(mdot1, t1, mdot2, t2 float64) float64 {
	total := mdot1 + mdot2
	if total <= 0 {
		return (t1 + t2) / 2
	}
	return (mdot1*t1 + mdot2*t2) / total
}
