package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVolumeEquilibrium(t *testing.T) {
	v := &Volume{Mass: 100, T: 20}
	// Steady inlet at 30 °C, no heat: derivative pushes toward 30.
	if d := v.DTdt(5, 30, 0); d <= 0 {
		t.Errorf("dT/dt = %v, want positive toward inlet temp", d)
	}
	v.T = 30
	if d := v.DTdt(5, 30, 0); math.Abs(d) > 1e-12 {
		t.Errorf("at equilibrium dT/dt = %v, want 0", d)
	}
	// Heat input raises temperature even at equilibrium flow.
	if d := v.DTdt(5, 30, 50e3); d <= 0 {
		t.Errorf("heated volume dT/dt = %v, want positive", d)
	}
}

func TestVolumeZeroMass(t *testing.T) {
	v := &Volume{Mass: 0, T: 20}
	if d := v.DTdt(5, 30, 1000); d != 0 {
		t.Errorf("zero-mass volume should be inert, got %v", d)
	}
}

func TestVolumeFirstOrderResponse(t *testing.T) {
	// Analytic: T(t) = Tin + (T0-Tin)·exp(-ṁ t/m). One time constant.
	v := &Volume{Mass: 50, T: 20}
	mdot := 5.0
	dt := 0.01
	steps := int(50.0 / mdot / dt) // t = m/ṁ = 10 s
	for i := 0; i < steps; i++ {
		v.T += dt * v.DTdt(mdot, 40, 0)
	}
	want := 40 + (20-40)*math.Exp(-1)
	if math.Abs(v.T-want) > 0.05 {
		t.Errorf("T after 1τ = %v, want %v", v.T, want)
	}
}

func TestEffectivenessBounds(t *testing.T) {
	f := func(ntuRaw, crRaw float64) bool {
		ntu := math.Mod(math.Abs(ntuRaw), 50)
		cr := math.Mod(math.Abs(crRaw), 1.0)
		e := Effectiveness(ntu, cr)
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Effectiveness(0, 0.5) != 0 {
		t.Error("zero NTU must have zero effectiveness")
	}
	// Balanced limit: ε = NTU/(1+NTU).
	if got := Effectiveness(2, 1); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("balanced ε = %v, want 2/3", got)
	}
	// cr → 0 limit: ε = 1 − exp(−NTU).
	if got := Effectiveness(2, 0); math.Abs(got-(1-math.Exp(-2))) > 1e-9 {
		t.Errorf("cr=0 ε = %v", got)
	}
	// Monotone in NTU.
	if Effectiveness(3, 0.8) <= Effectiveness(1, 0.8) {
		t.Error("ε should grow with NTU")
	}
}

func TestHXEnergyConservation(t *testing.T) {
	hx := HeatExchanger{UANominal: 200e3, MdotHotN: 30, MdotColdN: 40}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		tHot := 30 + 20*rng.Float64()
		tCold := 10 + 15*rng.Float64()
		if tHot <= tCold {
			continue
		}
		mh := 5 + 40*rng.Float64()
		mc := 5 + 40*rng.Float64()
		q, tho, tco := hx.Transfer(tHot, mh, tCold, mc)
		if q < 0 {
			t.Fatalf("negative heat flow %v", q)
		}
		// Outlets between inlets.
		if tho > tHot+1e-9 || tho < tCold-1e-9 {
			t.Fatalf("hot outlet %v outside [%v,%v]", tho, tCold, tHot)
		}
		if tco < tCold-1e-9 || tco > tHot+1e-9 {
			t.Fatalf("cold outlet %v outside [%v,%v]", tco, tCold, tHot)
		}
		// Energy balance: heat lost by hot equals heat gained by cold
		// equals q (within cp evaluation tolerance).
		// Transfer itself guarantees this by construction; check the
		// second law instead: no temperature crossing in counterflow
		// beyond effectiveness 1.
		if tco > tHot || tho < tCold {
			t.Fatalf("second-law violation: tho=%v tco=%v", tho, tco)
		}
	}
}

func TestHXZeroFlowAndInvertedGradient(t *testing.T) {
	hx := HeatExchanger{UANominal: 200e3, MdotHotN: 30, MdotColdN: 40}
	q, tho, tco := hx.Transfer(40, 0, 20, 10)
	if q != 0 || tho != 40 || tco != 20 {
		t.Error("zero hot flow must transfer nothing")
	}
	q, _, _ = hx.Transfer(20, 10, 40, 10) // cold hotter than hot: no transfer
	if q != 0 {
		t.Errorf("inverted gradient transferred %v", q)
	}
}

func TestHXMoreFlowMoreHeat(t *testing.T) {
	hx := HeatExchanger{UANominal: 300e3, MdotHotN: 30, MdotColdN: 40}
	q1, _, _ := hx.Transfer(40, 10, 20, 40)
	q2, _, _ := hx.Transfer(40, 20, 20, 40)
	if q2 <= q1 {
		t.Errorf("doubling hot flow should raise duty: %v vs %v", q1, q2)
	}
}

func TestHXUAScaling(t *testing.T) {
	hx := HeatExchanger{UANominal: 100e3, MdotHotN: 30, MdotColdN: 30}
	if got := hx.UA(30, 30); math.Abs(got-100e3) > 1 {
		t.Errorf("UA at design = %v", got)
	}
	if hx.UA(15, 15) >= 100e3 {
		t.Error("UA must fall below design at reduced flow")
	}
	if hx.UA(0, 30) != 0 {
		t.Error("UA with zero flow must be zero")
	}
}

func TestCoolingTowerApproach(t *testing.T) {
	ct := CoolingTower{EpsNominal: 0.7, MdotNominal: 120, FanExp: 0.4, LoadExp: 0.35, FanPowerMax: 30e3}
	tOut := ct.Outlet(35, 20, 1.0, 120)
	if tOut <= 20 || tOut >= 35 {
		t.Errorf("outlet %v must be between wet-bulb and inlet", tOut)
	}
	// Approach shrinks with faster fans.
	slow := ct.Outlet(35, 20, 0.3, 120)
	fast := ct.Outlet(35, 20, 1.0, 120)
	if fast >= slow {
		t.Errorf("faster fan should cool more: %v vs %v", fast, slow)
	}
	// More water load worsens the approach.
	light := ct.Outlet(35, 20, 1.0, 60)
	heavy := ct.Outlet(35, 20, 1.0, 240)
	if light >= heavy {
		t.Errorf("heavier loading should cool less: light=%v heavy=%v", light, heavy)
	}
}

func TestCoolingTowerCannotBeatWetBulb(t *testing.T) {
	ct := CoolingTower{EpsNominal: 0.95, MdotNominal: 120, FanExp: 0.4, LoadExp: 0.35}
	f := func(tInRaw, wbRaw, fanRaw, mRaw float64) bool {
		tIn := 15 + math.Mod(math.Abs(tInRaw), 30)
		wb := math.Mod(math.Abs(wbRaw), 28)
		fan := math.Mod(math.Abs(fanRaw), 1)
		m := 20 + math.Mod(math.Abs(mRaw), 200)
		out := ct.Outlet(tIn, wb, fan, m)
		if tIn <= wb {
			return out == tIn
		}
		return out >= wb-1e-9 && out <= tIn+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoolingTowerHeatAndFanPower(t *testing.T) {
	ct := CoolingTower{EpsNominal: 0.7, MdotNominal: 120, FanExp: 0.4, LoadExp: 0.35, FanPowerMax: 30e3}
	q := ct.HeatRejected(35, 20, 1.0, 120)
	if q <= 0 {
		t.Errorf("heat rejected = %v", q)
	}
	if ct.FanPower(0) != 0 {
		t.Error("stopped fan should draw nothing")
	}
	full := ct.FanPower(1)
	half := ct.FanPower(0.5)
	if math.Abs(full-30e3) > 1 {
		t.Errorf("full fan power = %v", full)
	}
	// Cube law dominates: half speed ≈ 1/8 power (+parasitic floor).
	if half > full/6 {
		t.Errorf("half-speed fan power %v too high vs %v", half, full)
	}
	if ct.FanPower(2) > ct.FanPowerMax*1.5 {
		t.Error("overspeed should clamp")
	}
}

func TestColdPlate(t *testing.T) {
	// MI250X-ish: 560 W at ~0.02 °C/W above coolant.
	p := ColdPlate{RConduction: 0.010, RConvNom: 0.012, QNominal: 1.2e-5}
	tDev := p.DeviceTemp(560, 32, 1.2e-5)
	want := 32 + 0.022*560
	if math.Abs(tDev-want) > 1e-9 {
		t.Errorf("device temp = %v, want %v", tDev, want)
	}
	// Reduced flow (biological-growth blockage use case) raises temp.
	blocked := p.DeviceTemp(560, 32, 0.3e-5)
	if blocked <= tDev {
		t.Errorf("blocked plate should run hotter: %v vs %v", blocked, tDev)
	}
	if !p.Throttles(560, 32, 0.05e-5, 95) {
		t.Error("severe blockage should throttle")
	}
	if p.Throttles(560, 32, 1.2e-5, 95) {
		t.Error("nominal conditions should not throttle")
	}
	if p.Rth(0) <= p.Rth(1e-5) {
		t.Error("stagnant flow must have much higher resistance")
	}
}

func TestMixStreams(t *testing.T) {
	if got := MixStreams(1, 10, 1, 30); got != 20 {
		t.Errorf("equal mix = %v", got)
	}
	if got := MixStreams(3, 10, 1, 30); got != 15 {
		t.Errorf("3:1 mix = %v", got)
	}
	if got := MixStreams(0, 10, 0, 30); got != 20 {
		t.Errorf("degenerate mix = %v", got)
	}
}
