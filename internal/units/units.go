// Package units provides physical unit conversions, constants, and
// temperature-dependent water properties used throughout the cooling and
// power models. All internal computation is SI (kg, m, s, W, Pa, K or °C
// where noted); these helpers exist so that configuration files and
// reports can speak the plant's native units (gpm, psi, MW, °F).
package units

import "math"

// General conversion factors.
const (
	// GPMToM3s converts US gallons per minute to cubic metres per second.
	GPMToM3s = 3.785411784e-3 / 60.0
	// M3sToGPM converts cubic metres per second to US gallons per minute.
	M3sToGPM = 1.0 / GPMToM3s
	// PSIToPa converts pounds per square inch to pascals.
	PSIToPa = 6894.757293168
	// PaToPSI converts pascals to pounds per square inch.
	PaToPSI = 1.0 / PSIToPa
	// FtH2OToPa converts feet of water column (at 4 °C) to pascals.
	FtH2OToPa = 2989.0669
	// LbToMetricTon converts pounds to metric tons (Eq. 6 of the paper).
	LbToMetricTon = 1.0 / 2204.6
	// HoursPerYear is the number of hours in a (non-leap) year.
	HoursPerYear = 8760.0
)

// Power helpers.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
)

// WToMW converts watts to megawatts.
func WToMW(w float64) float64 { return w / Mega }

// MWToW converts megawatts to watts.
func MWToW(mw float64) float64 { return mw * Mega }

// CToK converts Celsius to Kelvin.
func CToK(c float64) float64 { return c + 273.15 }

// KToC converts Kelvin to Celsius.
func KToC(k float64) float64 { return k - 273.15 }

// FToC converts Fahrenheit to Celsius.
func FToC(f float64) float64 { return (f - 32.0) * 5.0 / 9.0 }

// CToF converts Celsius to Fahrenheit.
func CToF(c float64) float64 { return c*9.0/5.0 + 32.0 }

// Water properties. The cooling loops run roughly 15–45 °C, well within
// the validity of these single-phase liquid tables (IAPWS-IF97 at 1 atm),
// which are linearly interpolated.

var waterTempGrid = []float64{0, 10, 20, 25, 30, 40, 50, 60, 70, 80}

var waterDensityTable = []float64{
	999.84, 999.70, 998.21, 997.05, 995.65, 992.22, 988.03, 983.20, 977.76, 971.79,
}

var waterCpTable = []float64{
	4217.6, 4192.1, 4181.8, 4179.6, 4178.4, 4178.5, 4180.6, 4184.5, 4189.8, 4196.5,
}

// interpTable linearly interpolates y(x) over the shared waterTempGrid,
// clamping outside the tabulated range.
func interpTable(x float64, ys []float64) float64 {
	g := waterTempGrid
	if x <= g[0] {
		return ys[0]
	}
	if x >= g[len(g)-1] {
		return ys[len(ys)-1]
	}
	for i := 1; i < len(g); i++ {
		if x <= g[i] {
			t := (x - g[i-1]) / (g[i] - g[i-1])
			return Lerp(ys[i-1], ys[i], t)
		}
	}
	return ys[len(ys)-1]
}

// WaterDensity returns the density of liquid water in kg/m³ at temperature
// tC in °C. Table interpolation, valid 0–80 °C (clamped outside).
func WaterDensity(tC float64) float64 {
	return interpTable(tC, waterDensityTable)
}

// WaterSpecificHeat returns the isobaric specific heat capacity of liquid
// water in J/(kg·°C) at temperature tC in °C. Valid 0–80 °C (clamped).
func WaterSpecificHeat(tC float64) float64 {
	return interpTable(tC, waterCpTable)
}

// WaterViscosity returns the dynamic viscosity of liquid water in Pa·s at
// temperature tC in °C using the Vogel equation. Valid 0–100 °C.
func WaterViscosity(tC float64) float64 {
	tK := CToK(tC)
	return 1e-3 * math.Exp(-3.7188+578.919/(tK-137.546))
}

// HeatExtracted implements Eq. 7 of the paper: H = ρ·Q·ΔT·c, where q is the
// volumetric flow rate in m³/s, dT the temperature rise in °C, and tC the
// bulk temperature at which the properties are evaluated. The result is in
// watts.
func HeatExtracted(q, dT, tC float64) float64 {
	return WaterDensity(tC) * q * dT * WaterSpecificHeat(tC)
}

// FlowForHeat inverts Eq. 7: the volumetric flow rate in m³/s required to
// carry heat h (W) across temperature rise dT (°C) at bulk temperature tC.
func FlowForHeat(h, dT, tC float64) float64 {
	if dT == 0 {
		return 0
	}
	return h / (WaterDensity(tC) * dT * WaterSpecificHeat(tC))
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a (at t=0) and b (at t=1). t is not
// clamped.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// LerpClamped linearly interpolates between a and b with t clamped to [0,1].
func LerpClamped(a, b, t float64) float64 { return Lerp(a, b, Clamp(t, 0, 1)) }
