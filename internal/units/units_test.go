package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFlowConversionsRoundTrip(t *testing.T) {
	f := func(gpm float64) bool {
		gpm = math.Mod(math.Abs(gpm), 20000)
		m3s := gpm * GPMToM3s
		return almostEqual(m3s*M3sToGPM, gpm, 1e-9*math.Max(1, gpm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKnownFlowConversion(t *testing.T) {
	// 10000 gpm (cooling tower loop order of magnitude) ≈ 0.6309 m³/s.
	got := 10000 * GPMToM3s
	if !almostEqual(got, 0.63090, 1e-4) {
		t.Errorf("10000 gpm = %v m³/s, want ≈0.6309", got)
	}
}

func TestPressureConversions(t *testing.T) {
	if !almostEqual(100*PSIToPa, 689475.7293, 1e-3) {
		t.Errorf("100 psi = %v Pa", 100*PSIToPa)
	}
	if !almostEqual(689475.7293*PaToPSI, 100, 1e-6) {
		t.Errorf("round trip failed")
	}
}

func TestTemperatureConversions(t *testing.T) {
	cases := []struct{ c, f float64 }{
		{0, 32}, {100, 212}, {-40, -40}, {37, 98.6},
	}
	for _, tc := range cases {
		if !almostEqual(CToF(tc.c), tc.f, 1e-9) {
			t.Errorf("CToF(%v) = %v, want %v", tc.c, CToF(tc.c), tc.f)
		}
		if !almostEqual(FToC(tc.f), tc.c, 1e-9) {
			t.Errorf("FToC(%v) = %v, want %v", tc.f, FToC(tc.f), tc.c)
		}
	}
	if !almostEqual(CToK(25), 298.15, 1e-12) {
		t.Errorf("CToK(25) = %v", CToK(25))
	}
	if !almostEqual(KToC(CToK(25)), 25, 1e-12) {
		t.Errorf("K/C round trip failed")
	}
}

func TestWaterDensity(t *testing.T) {
	cases := []struct{ tC, want, tol float64 }{
		{4, 1000.0, 1.0},
		{20, 998.2, 1.5},
		{25, 997.0, 1.5},
		{40, 992.2, 2.0},
		{60, 983.2, 2.5},
	}
	for _, tc := range cases {
		got := WaterDensity(tc.tC)
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("WaterDensity(%v) = %v, want %v±%v", tc.tC, got, tc.want, tc.tol)
		}
	}
}

func TestWaterDensityMonotonicDecreasingAboveFour(t *testing.T) {
	prev := WaterDensity(5)
	for tC := 6.0; tC <= 80; tC++ {
		d := WaterDensity(tC)
		if d >= prev {
			t.Fatalf("density not decreasing at %v °C: %v >= %v", tC, d, prev)
		}
		prev = d
	}
}

func TestWaterSpecificHeat(t *testing.T) {
	cases := []struct{ tC, want, tol float64 }{
		{20, 4184, 8},
		{25, 4180, 8},
		{40, 4179, 10},
	}
	for _, tc := range cases {
		got := WaterSpecificHeat(tc.tC)
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("WaterSpecificHeat(%v) = %v, want %v±%v", tc.tC, got, tc.want, tc.tol)
		}
	}
}

func TestWaterViscosity(t *testing.T) {
	// Reference: 1.0016 mPa·s at 20 °C, 0.6527 at 40 °C.
	if got := WaterViscosity(20); !almostEqual(got, 1.0016e-3, 3e-5) {
		t.Errorf("WaterViscosity(20) = %v", got)
	}
	if got := WaterViscosity(40); !almostEqual(got, 0.6527e-3, 3e-5) {
		t.Errorf("WaterViscosity(40) = %v", got)
	}
}

func TestHeatExtractedRoundTrip(t *testing.T) {
	f := func(h, dT float64) bool {
		h = 1e3 + math.Mod(math.Abs(h), 1e6) // 1 kW .. 1 GW-ish
		dT = 1 + math.Mod(math.Abs(dT), 20)  // 1..21 °C
		q := FlowForHeat(h, dT, 30)
		return almostEqual(HeatExtracted(q, dT, 30), h, 1e-6*h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowForHeatZeroDT(t *testing.T) {
	if got := FlowForHeat(1e6, 0, 30); got != 0 {
		t.Errorf("FlowForHeat with zero dT = %v, want 0", got)
	}
}

func TestHeatExtractedMagnitude(t *testing.T) {
	// A CDU carrying ~750 kW with a 10 °C rise needs roughly 18 L/s (~285 gpm).
	q := FlowForHeat(750e3, 10, 32)
	gpm := q * M3sToGPM
	if gpm < 250 || gpm > 330 {
		t.Errorf("CDU flow = %v gpm, want 250-330", gpm)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-5, 0, 10, 0}, {15, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, tc := range cases {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(10, 20, 0.5); got != 15 {
		t.Errorf("Lerp mid = %v", got)
	}
	if got := Lerp(10, 20, 2); got != 30 {
		t.Errorf("Lerp extrapolates: %v", got)
	}
	if got := LerpClamped(10, 20, 2); got != 20 {
		t.Errorf("LerpClamped clamps: %v", got)
	}
	if got := LerpClamped(10, 20, -1); got != 10 {
		t.Errorf("LerpClamped clamps low: %v", got)
	}
}

func TestWToMW(t *testing.T) {
	if WToMW(28.2e6) != 28.2 {
		t.Errorf("WToMW failed")
	}
	if MWToW(28.2) != 28.2e6 {
		t.Errorf("MWToW failed")
	}
}
