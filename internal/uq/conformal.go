package uq

import (
	"fmt"
	"math"
	"sort"
)

// Calibrator is a split-conformal prediction-error calibrator: it
// collects absolute residuals |prediction − truth| observed on held-out
// full-twin evaluations and turns them into a distribution-free
// prediction-interval radius at a configured confidence level. The
// optimizer uses it as the surrogate fallback gate — a candidate whose
// predicted-error interval is too wide (or whose calibrator has too few
// residuals to be trusted at all) is promoted to a full-twin run
// instead of being screened on the surrogate.
//
// The guarantee is the standard split-conformal one: if future
// residuals are exchangeable with the observed ones, the radius covers
// a fresh residual with probability ≥ confidence. The residual window
// is bounded (oldest dropped first) so the gate tracks the model as it
// is refit online.
type Calibrator struct {
	confidence float64
	minSamples int
	window     int
	residuals  []float64 // insertion order; quantiled on demand
}

// NewCalibrator builds a calibrator at the given confidence level
// (0 < confidence < 1; e.g. 0.9 → the radius covers ≥90 % of future
// residuals). minSamples ≤ 0 defaults to 8 — below it the calibrator
// reports not Ready and the gate must fall back. window ≤ 0 defaults
// to 256 retained residuals.
func NewCalibrator(confidence float64, minSamples, window int) (*Calibrator, error) {
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("uq: confidence must be in (0,1), got %v", confidence)
	}
	if minSamples <= 0 {
		minSamples = 8
	}
	if window <= 0 {
		window = 256
	}
	return &Calibrator{confidence: confidence, minSamples: minSamples, window: window}, nil
}

// Confidence returns the configured coverage level.
func (c *Calibrator) Confidence() float64 { return c.confidence }

// Observe records one held-out absolute residual. Negative inputs are
// folded (a residual is a magnitude).
func (c *Calibrator) Observe(r float64) {
	if r < 0 {
		r = -r
	}
	c.residuals = append(c.residuals, r)
	if len(c.residuals) > c.window {
		c.residuals = c.residuals[len(c.residuals)-c.window:]
	}
}

// Len is the retained residual count.
func (c *Calibrator) Len() int { return len(c.residuals) }

// Ready reports whether enough residuals have been observed for Radius
// to be meaningful at the configured confidence: at least minSamples,
// and enough that the conformal rank ⌈(n+1)·confidence⌉ lands inside
// the sample (otherwise the honest radius is unbounded).
func (c *Calibrator) Ready() bool {
	n := len(c.residuals)
	return n >= c.minSamples && conformalRank(n, c.confidence) <= n
}

// Radius returns the split-conformal interval radius: the
// ⌈(n+1)·confidence⌉-th smallest observed residual. Returns +Inf when
// not Ready — an infinite interval, which any finite gate rejects.
func (c *Calibrator) Radius() float64 {
	n := len(c.residuals)
	k := conformalRank(n, c.confidence)
	if n < c.minSamples || k > n {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), c.residuals...)
	sort.Float64s(sorted)
	return sorted[k-1]
}

// conformalRank is ⌈(n+1)·confidence⌉ — the order statistic whose value
// covers a fresh exchangeable residual with probability ≥ confidence.
func conformalRank(n int, confidence float64) int {
	k := int(float64(n+1) * confidence)
	if float64(k) < float64(n+1)*confidence {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}
