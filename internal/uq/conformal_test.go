package uq

import (
	"math"
	"math/rand"
	"testing"
)

// TestConformalMissRateWithinConfidence is the gate property test: for
// several residual distributions and seeds, calibrate on one sample and
// check that the empirical miss rate on a held-out sample — the
// fraction of fresh residuals exceeding the calibrated radius, i.e. the
// fraction of surrogate predictions the gate would wrongly trust —
// stays within the configured confidence level (plus binomial slack).
func TestConformalMissRateWithinConfidence(t *testing.T) {
	draws := map[string]func(*rand.Rand) float64{
		"halfnormal":  func(r *rand.Rand) float64 { return math.Abs(r.NormFloat64()) },
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() * 3 },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 0.5 },
		"heavy": func(r *rand.Rand) float64 {
			v := r.NormFloat64()
			return v * v // χ²₁: heavy right tail
		},
	}
	const calN, holdN = 200, 4000
	for _, conf := range []float64{0.8, 0.9, 0.95} {
		for name, draw := range draws {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + 13))
				c, err := NewCalibrator(conf, 8, calN)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < calN; i++ {
					c.Observe(draw(rng))
				}
				if !c.Ready() {
					t.Fatalf("%s conf=%v seed=%d: calibrator not ready after %d residuals", name, conf, seed, calN)
				}
				radius := c.Radius()
				misses := 0
				for i := 0; i < holdN; i++ {
					if draw(rng) > radius {
						misses++
					}
				}
				missRate := float64(misses) / holdN
				// Allowed miss rate is 1−confidence; the conformal rank
				// guarantees ≤ that in expectation. Allow ~4σ of combined
				// calibration-sample + held-out binomial noise.
				allowed := 1 - conf
				slack := 4 * math.Sqrt(allowed*(1-allowed)*(1/float64(calN)+1/float64(holdN)))
				if missRate > allowed+slack {
					t.Errorf("%s conf=%v seed=%d: miss rate %.4f exceeds %.4f+%.4f",
						name, conf, seed, missRate, allowed, slack)
				}
			}
		}
	}
}

func TestConformalRadiusMonotoneInConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var res []float64
	for i := 0; i < 300; i++ {
		res = append(res, math.Abs(rng.NormFloat64()))
	}
	prev := -1.0
	for _, conf := range []float64{0.5, 0.7, 0.9, 0.99} {
		c, err := NewCalibrator(conf, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			c.Observe(r)
		}
		rad := c.Radius()
		if rad < prev {
			t.Fatalf("radius not monotone in confidence: %v at %v after %v", rad, conf, prev)
		}
		prev = rad
	}
}

func TestConformalNotReadyIsInfinite(t *testing.T) {
	c, err := NewCalibrator(0.9, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		c.Observe(1)
	}
	if c.Ready() {
		t.Fatal("ready below minSamples")
	}
	if !math.IsInf(c.Radius(), 1) {
		t.Fatalf("radius before ready should be +Inf, got %v", c.Radius())
	}
	// At high confidence a small sample cannot honestly bound the tail:
	// ⌈(n+1)·c⌉ > n must also report not Ready.
	hc, err := NewCalibrator(0.99, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		hc.Observe(1)
	}
	if hc.Ready() {
		t.Fatal("ready although the conformal rank exceeds the sample")
	}
	if _, err := NewCalibrator(1.2, 0, 0); err == nil {
		t.Fatal("confidence out of range should error")
	}
}

func TestConformalWindowSlides(t *testing.T) {
	c, err := NewCalibrator(0.9, 8, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Observe(100) // stale large residuals
	}
	for i := 0; i < 50; i++ {
		c.Observe(0.1) // model got refit and is now accurate
	}
	if c.Len() != 50 {
		t.Fatalf("window kept %d residuals, want 50", c.Len())
	}
	if r := c.Radius(); r > 0.1+1e-12 {
		t.Fatalf("stale residuals still dominate the radius: %v", r)
	}
}
