// Package uq implements the uncertainty quantification the paper embeds
// in RAPS (§IV: "we prioritized extensive V&V ... and also have
// implemented UQ into our RAPS module", following the NASEM digital-twin
// recommendation to deeply embed VVUQ). Model-form parameters whose
// datasheet values carry tolerance — component powers, conversion
// efficiencies, the cooling-efficiency factor — are perturbed within
// stated bounds and the simulation is re-run as an ensemble, yielding
// confidence intervals on the twin's power, energy, and loss predictions.
package uq

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
)

// Perturbation bounds one model parameter's relative uncertainty.
type Perturbation struct {
	// Name identifies the parameter in reports.
	Name string
	// Rel is the half-width of the uniform relative perturbation
	// (0.05 → ±5 %).
	Rel float64
	// Apply scales the parameter inside a model copy.
	Apply func(m *power.Model, factor float64)
}

// DefaultPerturbations returns the datasheet-tolerance set used for
// Frontier: ±3 % on RAM/NIC/NVMe/switch average powers, ±1 % on the
// rectifier and SIVOC efficiencies, ±2 % on the cooling-efficiency
// factor, and ±5 % on the CDU pump overhead.
func DefaultPerturbations() []Perturbation {
	return []Perturbation{
		{Name: "ram_power", Rel: 0.03, Apply: func(m *power.Model, f float64) { m.Spec.RAM *= f }},
		{Name: "nic_power", Rel: 0.03, Apply: func(m *power.Model, f float64) { m.Spec.NIC *= f }},
		{Name: "nvme_power", Rel: 0.03, Apply: func(m *power.Model, f float64) { m.Spec.NVMe *= f }},
		{Name: "switch_power", Rel: 0.03, Apply: func(m *power.Model, f float64) { m.Spec.Switch *= f }},
		{Name: "cdu_pump_power", Rel: 0.05, Apply: func(m *power.Model, f float64) { m.Spec.CDUPump *= f }},
		{Name: "rectifier_eta", Rel: 0.01, Apply: func(m *power.Model, f float64) {
			m.Chain.Rect.EtaMax = clamp01(m.Chain.Rect.EtaMax * f)
		}},
		{Name: "sivoc_eta", Rel: 0.01, Apply: func(m *power.Model, f float64) {
			m.Chain.EtaSIVOC = clamp01(m.Chain.EtaSIVOC * f)
		}},
		{Name: "cooling_eff", Rel: 0.02, Apply: func(m *power.Model, f float64) {
			m.CoolingEff = clamp01(m.CoolingEff * f)
		}},
	}
}

// Config parameterizes an ensemble study.
type Config struct {
	// Members is the ensemble size (default 32).
	Members int
	// Seed drives both the perturbation draws and the shared workload.
	Seed int64
	// HorizonSec is each member's simulated duration.
	HorizonSec float64
	// TickSec is the simulation tick (default 15 s).
	TickSec float64
	// Perturbations to sample; nil uses DefaultPerturbations.
	Perturbations []Perturbation
	// Workers bounds parallelism (0 → NumCPU).
	Workers int
}

// Interval is a two-sided confidence interval with the ensemble mean.
type Interval struct {
	Mean, Std float64
	P05, P95  float64
}

// Result aggregates an ensemble study.
type Result struct {
	Members   int
	PowerMW   Interval
	EnergyMWh Interval
	LossMW    Interval
	EtaSystem Interval
	CO2Tons   Interval
	// MemberReports holds each member's full report.
	MemberReports []*raps.Report
}

// Run executes the ensemble: every member simulates the *same* workload
// on an independently perturbed model, so the spread isolates parametric
// model-form uncertainty.
func Run(cfg Config, baseJobs func() []*job.Job) (*Result, error) {
	if cfg.HorizonSec <= 0 {
		return nil, fmt.Errorf("uq: HorizonSec must be positive")
	}
	if cfg.Members <= 0 {
		cfg.Members = 32
	}
	if cfg.TickSec <= 0 {
		cfg.TickSec = 15
	}
	perts := cfg.Perturbations
	if perts == nil {
		perts = DefaultPerturbations()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.Members {
		workers = cfg.Members
	}

	// Draw all perturbation factors up front for reproducibility.
	master := rand.New(rand.NewSource(cfg.Seed))
	factors := make([][]float64, cfg.Members)
	for m := range factors {
		factors[m] = make([]float64, len(perts))
		for p := range perts {
			factors[m][p] = 1 + perts[p].Rel*(2*master.Float64()-1)
		}
	}

	reports := make([]*raps.Report, cfg.Members)
	errs := make([]error, cfg.Members)
	var wg sync.WaitGroup
	memberCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range memberCh {
				reports[m], errs[m] = runMember(cfg, perts, factors[m], baseJobs)
			}
		}()
	}
	for m := 0; m < cfg.Members; m++ {
		memberCh <- m
	}
	close(memberCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Members: cfg.Members, MemberReports: reports}
	res.PowerMW = interval(reports, func(r *raps.Report) float64 { return r.AvgPowerMW })
	res.EnergyMWh = interval(reports, func(r *raps.Report) float64 { return r.EnergyMWh })
	res.LossMW = interval(reports, func(r *raps.Report) float64 { return r.AvgLossMW })
	res.EtaSystem = interval(reports, func(r *raps.Report) float64 { return r.EtaSystem })
	res.CO2Tons = interval(reports, func(r *raps.Report) float64 { return r.CO2Tons })
	return res, nil
}

func runMember(cfg Config, perts []Perturbation, factors []float64, baseJobs func() []*job.Job) (*raps.Report, error) {
	model := power.NewFrontierModel()
	for p := range perts {
		perts[p].Apply(model, factors[p])
	}
	var jobs []*job.Job
	if baseJobs != nil {
		jobs = baseJobs()
	}
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = cfg.TickSec
	sim, err := raps.New(rcfg, model, jobs)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg.HorizonSec)
}

func interval(reports []*raps.Report, f func(*raps.Report) float64) Interval {
	vals := make([]float64, len(reports))
	for i, r := range reports {
		vals[i] = f(r)
	}
	sort.Float64s(vals)
	var iv Interval
	n := float64(len(vals))
	for _, v := range vals {
		iv.Mean += v
	}
	iv.Mean /= n
	for _, v := range vals {
		d := v - iv.Mean
		iv.Std += d * d
	}
	if len(vals) > 1 {
		iv.Std = math.Sqrt(iv.Std / n)
	} else {
		iv.Std = 0
	}
	iv.P05 = quantile(vals, 0.05)
	iv.P95 = quantile(vals, 0.95)
	return iv
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
