package uq

import (
	"math"
	"testing"

	"exadigit/internal/job"
	"exadigit/internal/power"
)

func idleEnsemble(t *testing.T, members int, seed int64) *Result {
	t.Helper()
	res, err := Run(Config{
		Members: members, Seed: seed, HorizonSec: 300, TickSec: 15,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnsembleIntervalsBracketNominal(t *testing.T) {
	res := idleEnsemble(t, 24, 1)
	if res.Members != 24 || len(res.MemberReports) != 24 {
		t.Fatalf("members = %d", res.Members)
	}
	// Nominal idle power 7.24 MW must sit inside the 5-95 band.
	if res.PowerMW.P05 > 7.24 || res.PowerMW.P95 < 7.24 {
		t.Errorf("idle band [%v, %v] misses nominal 7.24", res.PowerMW.P05, res.PowerMW.P95)
	}
	// The band is tight: datasheet tolerances are a few percent.
	width := res.PowerMW.P95 - res.PowerMW.P05
	if width <= 0 || width > 0.4 {
		t.Errorf("band width = %v MW", width)
	}
	if res.PowerMW.P05 > res.PowerMW.Mean || res.PowerMW.Mean > res.PowerMW.P95 {
		t.Error("mean outside its own band")
	}
	if res.EtaSystem.Std <= 0 {
		t.Error("efficiency should show spread under eta perturbations")
	}
}

func TestEnsembleReproducible(t *testing.T) {
	a := idleEnsemble(t, 8, 7)
	b := idleEnsemble(t, 8, 7)
	if a.PowerMW.Mean != b.PowerMW.Mean || a.PowerMW.Std != b.PowerMW.Std {
		t.Error("same seed must reproduce the ensemble")
	}
	c := idleEnsemble(t, 8, 8)
	if a.PowerMW.Mean == c.PowerMW.Mean {
		t.Error("different seeds should differ")
	}
}

func TestEnsembleWithWorkload(t *testing.T) {
	mk := func() []*job.Job {
		j := job.New(1, "load", 8000, 600, 0)
		j.CPUTrace = job.FlatTrace(0.8, 600)
		j.GPUTrace = job.FlatTrace(0.8, 600)
		return []*job.Job{j}
	}
	res, err := Run(Config{Members: 8, Seed: 3, HorizonSec: 300, TickSec: 15}, mk)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded system: ≈20+ MW with a wider absolute band than idle.
	if res.PowerMW.Mean < 18 {
		t.Errorf("loaded ensemble mean = %v MW", res.PowerMW.Mean)
	}
	for _, r := range res.MemberReports {
		if r.AvgPowerMW <= 0 {
			t.Fatal("member produced no power")
		}
	}
	// CO2 spread follows energy and efficiency spread.
	if res.CO2Tons.Std <= 0 {
		t.Error("CO2 should show spread")
	}
}

func TestSinglePerturbationIsolation(t *testing.T) {
	// Only the SIVOC efficiency perturbed: power moves inversely with it.
	perts := []Perturbation{{
		Name: "sivoc_eta", Rel: 0.01,
		Apply: func(m *power.Model, f float64) { m.Chain.EtaSIVOC = m.Chain.EtaSIVOC * f },
	}}
	res, err := Run(Config{
		Members: 16, Seed: 5, HorizonSec: 120, TickSec: 15, Perturbations: perts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerMW.Std <= 0 {
		t.Error("perturbing SIVOC must spread power")
	}
	// Members with lower efficiency draw more power: spread is ≈±0.5 %
	// of the conversion-chain share.
	if res.PowerMW.P95-res.PowerMW.P05 > 0.2 {
		t.Errorf("±1%% SIVOC spread too wide: %v MW", res.PowerMW.P95-res.PowerMW.P05)
	}
}

func TestDefaultPerturbationsApplyCleanly(t *testing.T) {
	perts := DefaultPerturbations()
	if len(perts) < 6 {
		t.Fatalf("only %d perturbations", len(perts))
	}
	m := power.NewFrontierModel()
	for _, p := range perts {
		if p.Name == "" || p.Rel <= 0 || p.Rel > 0.2 {
			t.Errorf("perturbation %+v malformed", p.Name)
		}
		p.Apply(m, 1.0) // identity factor must not corrupt the model
	}
	var sp power.SystemPower
	m.ComputeUniform(0, 0, 9472, &sp)
	if math.Abs(sp.TotalW/1e6-7.24) > 0.05 {
		t.Errorf("identity perturbations changed the model: %v MW", sp.TotalW/1e6)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestIntervalQuantiles(t *testing.T) {
	res := idleEnsemble(t, 2, 11)
	// Degenerate small ensembles still produce ordered quantiles.
	if res.PowerMW.P05 > res.PowerMW.P95 {
		t.Error("quantiles out of order")
	}
}
