package viz

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"exadigit/internal/httpmw"
)

// TestDashboardBehindBearerAuth pins the serve-mode auth wiring for the
// dashboard mount: every viz endpoint behind httpmw.RequireBearer is a
// 401 without the token and serves normally with it.
func TestDashboardBehindBearerAuth(t *testing.T) {
	srv := httptest.NewServer(httpmw.RequireBearer("twin-token", NewServer(&fakeSource{}, nil).Handler()))
	defer srv.Close()

	for _, path := range []string{"/api/status", "/api/series", "/api/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("tokenless %s = %d, want 401", path, resp.StatusCode)
		}
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer twin-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized status = %d, want 200", resp.StatusCode)
	}
}
