// Package viz is the visual-analytics module (§III-D) adapted to a Go
// library: the paper couples an Unreal Engine 5 augmented-reality model
// with a web dashboard; here the same insights — spatial heat maps of the
// machine room, time-series of power/PUE/temperatures, and launching
// what-if simulations — are provided as terminal renderings and an
// HTTP/JSON API (see server.go). The substitution is documented in
// DESIGN.md §3.
package viz

import (
	"fmt"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a unicode sparkline of at most width points,
// downsampling by averaging when the series is longer.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	pts := resampleMean(vals, width)
	lo, hi := minMax(pts)
	var sb strings.Builder
	for _, v := range pts {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

var heatLevels = []rune(" .:-=+*#%@")

// Heatmap renders per-cell intensities as an ASCII grid with the given
// number of columns. Values are normalized to [lo, hi]; out-of-range
// values clamp. Used for the rack heat map (the §III-A "visualizing heat
// maps in the system" use case).
func Heatmap(vals []float64, cols int, lo, hi float64) string {
	if len(vals) == 0 || cols <= 0 {
		return ""
	}
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 && i%cols == 0 {
			sb.WriteByte('\n')
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(heatLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(heatLevels) {
			idx = len(heatLevels) - 1
		}
		sb.WriteRune(heatLevels[idx])
	}
	return sb.String()
}

// Gauge renders a labeled horizontal bar: "label [#####.....] 50.0%".
func Gauge(label string, frac float64, width int) string {
	if width <= 0 {
		width = 20
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("%-12s [%s%s] %5.1f%%",
		label, strings.Repeat("#", filled), strings.Repeat(".", width-filled), frac*100)
}

// StatusPanel is the data behind one dashboard frame.
type StatusPanel struct {
	TimeSec       float64
	PowerMW       float64
	LossMW        float64
	Utilization   float64
	PUE           float64
	JobsRunning   int
	JobsPending   int
	PowerSeriesMW []float64 // recent history for the sparkline
	RackPowerKW   []float64 // per-rack power for the heat map
	HTWSupplyC    float64
	HTWReturnC    float64
	CellsStaged   int
	TotalCells    int
}

// Render draws the full terminal dashboard frame.
func (p *StatusPanel) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ExaDigiT ── t=%8.0fs  power %6.2f MW  loss %5.2f MW  PUE %5.3f\n",
		p.TimeSec, p.PowerMW, p.LossMW, p.PUE)
	fmt.Fprintf(&sb, "jobs: %d running, %d pending\n", p.JobsRunning, p.JobsPending)
	sb.WriteString(Gauge("utilization", p.Utilization, 30))
	sb.WriteByte('\n')
	if len(p.PowerSeriesMW) > 0 {
		fmt.Fprintf(&sb, "power (MW)   %s\n", Sparkline(p.PowerSeriesMW, 60))
	}
	if len(p.RackPowerKW) > 0 {
		lo, hi := minMax(p.RackPowerKW)
		fmt.Fprintf(&sb, "rack heat map (%.0f-%.0f kW):\n%s\n",
			lo, hi, Heatmap(p.RackPowerKW, 25, lo, hi))
	}
	if p.HTWReturnC > 0 {
		fmt.Fprintf(&sb, "cooling: HTW %0.1f→%0.1f °C, %d/%d tower cells\n",
			p.HTWSupplyC, p.HTWReturnC, p.CellsStaged, p.TotalCells)
	}
	return sb.String()
}

func resampleMean(vals []float64, width int) []float64 {
	if len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := range out {
		start := i * len(vals) / width
		end := (i + 1) * len(vals) / width
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range vals[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}
