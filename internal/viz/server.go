package viz

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"exadigit/internal/config"
	"exadigit/internal/httpmw"
	"exadigit/internal/obs"
)

// Status is the JSON document served at /api/status.
type Status struct {
	TimeSec     float64 `json:"time_sec"`
	PowerMW     float64 `json:"power_mw"`
	LossMW      float64 `json:"loss_mw"`
	Utilization float64 `json:"utilization"`
	PUE         float64 `json:"pue"`
	JobsRunning int     `json:"jobs_running"`
	JobsPending int     `json:"jobs_pending"`
	// PartPowerMW is the per-partition power split of a multi-partition
	// system, in spec partition order; omitted for single-partition
	// twins.
	PartPowerMW []float64 `json:"part_power_mw,omitempty"`
}

// SeriesPoint is one sample of the /api/series document.
type SeriesPoint struct {
	TimeSec float64 `json:"time_sec"`
	PowerMW float64 `json:"power_mw"`
	PUE     float64 `json:"pue"`
	Util    float64 `json:"utilization"`
	// PartMW is the per-partition power series of a multi-partition
	// system; omitted for single-partition twins.
	PartMW []float64 `json:"part_mw,omitempty"`
}

// Source supplies live data to the HTTP API. The core twin implements it.
type Source interface {
	// Status returns the current system status.
	Status() Status
	// Series returns the recorded history.
	Series() []SeriesPoint
	// CoolingOutputs returns the named 317-channel cooling snapshot, or
	// nil when the cooling model is not coupled.
	CoolingOutputs() map[string]float64
}

// ExperimentRunner launches a named what-if scenario with parameters and
// returns a JSON-serializable result. It stands in for the paper's
// Kubernetes-pod-per-experiment deployment (§III-B6). The context is the
// request's: a client disconnect aborts the experiment mid-run.
type ExperimentRunner func(ctx context.Context, params map[string]string) (any, error)

// Server is the REST API backend (the dashboard's data source).
type Server struct {
	src     Source
	runner  ExperimentRunner
	logf    httpmw.Logf
	metrics *httpmw.Metrics

	mu      sync.Mutex
	results map[int]any
	nextID  int
}

// NewServer builds a Server over the source. runner may be nil to
// disable /api/run.
func NewServer(src Source, runner ExperimentRunner) *Server {
	return &Server{
		src: src, runner: runner,
		metrics: &httpmw.Metrics{},
		results: make(map[int]any), nextID: 1,
	}
}

// SetLogf enables request logging through the shared middleware stack
// (log.Printf-shaped; nil keeps logging off). Call before Handler.
func (s *Server) SetLogf(logf httpmw.Logf) { s.logf = logf }

// Metrics exposes the middleware counters.
func (s *Server) Metrics() *httpmw.Metrics { return s.metrics }

// RegisterMetrics attaches the dashboard's HTTP counters to a metrics
// registry under server="dashboard" — the same families the sweep
// service's stack reports into, each stack with its own label.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	s.metrics.Register(reg, "dashboard")
}

// Handler returns the HTTP handler exposing the API, wrapped in the
// shared middleware stack (panic recovery, metrics, optional logging).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/series", s.handleSeries)
	mux.HandleFunc("GET /api/cooling", s.handleCooling)
	mux.HandleFunc("POST /api/run", s.handleRun)
	mux.HandleFunc("GET /api/experiments", s.handleExperiments)
	mux.Handle("GET /api/metrics", s.metrics.Handler())
	return httpmw.Wrap(mux, s.logf, s.metrics)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRunError renders a what-if launch failure. Spec validation and
// AutoCSM feasibility errors carry a structured field/constraint/
// suggestion triple (config.FieldError); the dashboard surfaces it as
// JSON fields instead of a free-text message with sizing internals.
func writeRunError(w http.ResponseWriter, err error) {
	body := map[string]string{"error": err.Error()}
	var fe *config.FieldError
	if errors.As(err, &fe) {
		body["field"] = fe.Field
		body["constraint"] = fe.Constraint
		if fe.Suggestion != "" {
			body["suggestion"] = fe.Suggestion
		}
	}
	writeJSON(w, http.StatusBadRequest, body)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.src.Status())
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.src.Series())
}

func (s *Server) handleCooling(w http.ResponseWriter, r *http.Request) {
	out := s.src.CoolingOutputs()
	if out == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "cooling model not coupled"})
		return
	}
	// Stable key order for reproducible payloads.
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]map[string]float64, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, map[string]float64{k: out[k]})
	}
	writeJSON(w, http.StatusOK, ordered)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.runner == nil {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "no experiment runner configured"})
		return
	}
	params := map[string]string{}
	if err := r.ParseForm(); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	for k, vs := range r.Form {
		if len(vs) > 0 {
			params[k] = vs[0]
		}
	}
	result, err := s.runner(r.Context(), params)
	if err != nil {
		writeRunError(w, err)
		return
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.results[id] = result
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "result": result})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.results))
	for id := range s.results {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		out = append(out, map[string]any{"id": id, "result": s.results[id]})
	}
	writeJSON(w, http.StatusOK, out)
}

// Result fetches a stored experiment result by id.
func (s *Server) Result(id int) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.results[id]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("viz: no experiment %d", id)
}
