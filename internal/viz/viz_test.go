package viz

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("rune count = %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("endpoints = %c %c", runes[0], runes[7])
	}
	// Monotone input → non-decreasing glyph levels.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline not monotone at %d: %s", i, s)
		}
	}
}

func TestSparklineDownsamplesAndDegenerates(t *testing.T) {
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i % 100)
	}
	s := Sparkline(long, 40)
	if utf8.RuneCountInString(s) != 40 {
		t.Errorf("downsampled width = %d", utf8.RuneCountInString(s))
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if utf8.RuneCountInString(flat) != 3 {
		t.Error("flat series should still render")
	}
}

func TestHeatmap(t *testing.T) {
	vals := []float64{0, 25, 50, 75, 100, 0}
	hm := Heatmap(vals, 3, 0, 100)
	lines := strings.Split(hm, "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2", len(lines))
	}
	if utf8.RuneCountInString(lines[0]) != 3 {
		t.Errorf("cols = %d", utf8.RuneCountInString(lines[0]))
	}
	r := []rune(hm)
	if r[0] != ' ' {
		t.Errorf("cold cell = %q", r[0])
	}
	if !strings.ContainsRune(hm, '@') {
		t.Error("hot cell glyph missing")
	}
	if Heatmap(nil, 3, 0, 1) != "" {
		t.Error("empty heatmap")
	}
}

func TestGauge(t *testing.T) {
	g := Gauge("util", 0.5, 10)
	if !strings.Contains(g, "#####.....") {
		t.Errorf("gauge = %q", g)
	}
	if !strings.Contains(g, "50.0%") {
		t.Errorf("gauge label = %q", g)
	}
	if !strings.Contains(Gauge("x", -1, 10), "0.0%") {
		t.Error("negative clamps to 0")
	}
	if !strings.Contains(Gauge("x", 2, 10), "100.0%") {
		t.Error("over-unity clamps to 1")
	}
}

func TestStatusPanelRender(t *testing.T) {
	p := &StatusPanel{
		TimeSec: 3600, PowerMW: 17.2, LossMW: 1.1, Utilization: 0.8, PUE: 1.05,
		JobsRunning: 42, JobsPending: 7,
		PowerSeriesMW: []float64{16, 17, 18, 17},
		RackPowerKW:   make([]float64, 74),
		HTWSupplyC:    23.5, HTWReturnC: 34.2, CellsStaged: 18, TotalCells: 20,
	}
	for i := range p.RackPowerKW {
		p.RackPowerKW[i] = float64(100 + i)
	}
	out := p.Render()
	for _, want := range []string{"17.20 MW", "PUE 1.050", "42 running", "rack heat map", "18/20 tower cells", "power (MW)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// fakeSource implements Source for handler tests.
type fakeSource struct {
	cooling map[string]float64
}

func (f *fakeSource) Status() Status {
	return Status{TimeSec: 60, PowerMW: 17, Utilization: 0.8, JobsRunning: 3}
}

func (f *fakeSource) Series() []SeriesPoint {
	return []SeriesPoint{{TimeSec: 0, PowerMW: 16}, {TimeSec: 15, PowerMW: 17}}
}

func (f *fakeSource) CoolingOutputs() map[string]float64 { return f.cooling }

func TestServerStatusAndSeries(t *testing.T) {
	srv := httptest.NewServer(NewServer(&fakeSource{}, nil).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PowerMW != 17 || st.JobsRunning != 3 {
		t.Errorf("status = %+v", st)
	}

	resp2, err := http.Get(srv.URL + "/api/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var series []SeriesPoint
	if err := json.NewDecoder(resp2.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[1].PowerMW != 17 {
		t.Errorf("series = %+v", series)
	}
}

func TestServerCooling(t *testing.T) {
	// Without cooling: 404.
	srv := httptest.NewServer(NewServer(&fakeSource{}, nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/cooling")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
	// With cooling: 200 + values.
	srv2 := httptest.NewServer(NewServer(&fakeSource{cooling: map[string]float64{"pue": 1.05}}, nil).Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/api/cooling")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp2.StatusCode)
	}
}

func TestServerRunAndExperiments(t *testing.T) {
	runner := func(_ context.Context, params map[string]string) (any, error) {
		if params["mode"] == "bad" {
			return nil, errors.New("boom")
		}
		return map[string]string{"mode": params["mode"]}, nil
	}
	s := NewServer(&fakeSource{}, runner)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/api/run", url.Values{"mode": {"dc380"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var out struct {
		ID     int               `json:"id"`
		Result map[string]string `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 1 || out.Result["mode"] != "dc380" {
		t.Errorf("run = %+v", out)
	}
	// Stored result is retrievable (the Druid-recall workflow).
	if _, err := s.Result(1); err != nil {
		t.Error(err)
	}
	if _, err := s.Result(99); err == nil {
		t.Error("missing result should error")
	}
	resp2, err := http.Get(srv.URL + "/api/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("experiments = %+v", list)
	}
	// Failing run returns 400.
	resp3, err := http.PostForm(srv.URL+"/api/run", url.Values{"mode": {"bad"}})
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad run status = %d", resp3.StatusCode)
	}
}

func TestServerRunWithoutRunner(t *testing.T) {
	srv := httptest.NewServer(NewServer(&fakeSource{}, nil).Handler())
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/api/run", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
