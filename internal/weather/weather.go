// Package weather generates the outdoor wet-bulb temperature series that
// drives the cooling-tower loop. The paper's cooling model takes the
// wet-bulb (outdoor) temperature as one of its two inputs (§III-C4,
// Table II lists it at 60 s resolution); since ORNL's weather telemetry is
// not public, we synthesize a statistically plausible East-Tennessee
// series: a seasonal sinusoid, a diurnal cycle, and mean-reverting
// (Ornstein–Uhlenbeck) weather noise, all reproducible from a seed.
package weather

import (
	"math"
	"math/rand"
	"time"
)

// Config parameterizes the synthetic wet-bulb generator. Defaults mimic
// Oak Ridge, TN: annual mean ≈ 13 °C wet-bulb with ±9 °C seasonal swing
// and ±3 °C diurnal swing.
type Config struct {
	AnnualMeanC    float64 // mean wet-bulb over the year
	SeasonalAmpC   float64 // half peak-to-peak seasonal variation
	DiurnalAmpC    float64 // half peak-to-peak daily variation
	NoiseStdC      float64 // stationary std of the OU noise
	NoiseTauHours  float64 // OU mean-reversion time constant
	ColdestDayOfYr int     // day of year of the seasonal minimum
	CoolestHour    float64 // local hour of the diurnal minimum
	Seed           int64
}

// DefaultConfig returns Oak Ridge-like parameters.
func DefaultConfig() Config {
	return Config{
		AnnualMeanC:    13.0,
		SeasonalAmpC:   9.0,
		DiurnalAmpC:    3.0,
		NoiseStdC:      2.0,
		NoiseTauHours:  18.0,
		ColdestDayOfYr: 20, // late January
		CoolestHour:    5.0,
		Seed:           1,
	}
}

// Generator produces a wet-bulb series sample by sample.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	noise float64
	init  bool
}

// NewGenerator builds a Generator with the given config.
func NewGenerator(cfg Config) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// deterministic returns the noise-free wet-bulb at time t.
func (g *Generator) deterministic(t time.Time) float64 {
	doy := float64(t.YearDay())
	hour := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	seasonal := -g.cfg.SeasonalAmpC * math.Cos(2*math.Pi*(doy-float64(g.cfg.ColdestDayOfYr))/365.25)
	diurnal := -g.cfg.DiurnalAmpC * math.Cos(2*math.Pi*(hour-g.cfg.CoolestHour)/24)
	return g.cfg.AnnualMeanC + seasonal + diurnal
}

// At returns the wet-bulb temperature (°C) at time t, advancing the noise
// process by dt seconds from the previous call. The very first call
// initializes the noise at its stationary distribution.
func (g *Generator) At(t time.Time, dtSec float64) float64 {
	if !g.init {
		g.noise = g.cfg.NoiseStdC * g.rng.NormFloat64()
		g.init = true
	} else if dtSec > 0 && g.cfg.NoiseTauHours > 0 {
		tau := g.cfg.NoiseTauHours * 3600
		a := math.Exp(-dtSec / tau)
		// Exact OU discretization preserves the stationary variance.
		g.noise = a*g.noise + g.cfg.NoiseStdC*math.Sqrt(1-a*a)*g.rng.NormFloat64()
	}
	return g.deterministic(t) + g.noise
}

// Series produces n samples spaced dtSec apart starting at start.
func (g *Generator) Series(start time.Time, n int, dtSec float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.At(start.Add(time.Duration(float64(i)*dtSec*float64(time.Second))), dtSec)
	}
	return out
}

// Constant returns a generator-compatible flat series, useful for
// controlled verification experiments.
func Constant(value float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = value
	}
	return out
}
