package weather

import (
	"math"
	"testing"
	"time"
)

func TestSeasonalShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStdC = 0 // deterministic
	g := NewGenerator(cfg)
	jan := g.At(time.Date(2024, 1, 20, 12, 0, 0, 0, time.UTC), 0)
	g2 := NewGenerator(cfg)
	jul := g2.At(time.Date(2024, 7, 21, 12, 0, 0, 0, time.UTC), 0)
	if jul-jan < 10 {
		t.Errorf("summer (%v) should be much warmer than winter (%v)", jul, jan)
	}
}

func TestDiurnalShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStdC = 0
	g := NewGenerator(cfg)
	night := g.At(time.Date(2024, 6, 1, 5, 0, 0, 0, time.UTC), 0)
	g2 := NewGenerator(cfg)
	afternoon := g2.At(time.Date(2024, 6, 1, 17, 0, 0, 0, time.UTC), 0)
	if afternoon-night < 4 {
		t.Errorf("afternoon (%v) should exceed pre-dawn (%v) by ~2·diurnal amp", afternoon, night)
	}
}

func TestNoiseStationaryStd(t *testing.T) {
	cfg := DefaultConfig()
	g := NewGenerator(cfg)
	det := NewGenerator(Config{
		AnnualMeanC: cfg.AnnualMeanC, SeasonalAmpC: cfg.SeasonalAmpC,
		DiurnalAmpC: cfg.DiurnalAmpC, ColdestDayOfYr: cfg.ColdestDayOfYr,
		CoolestHour: cfg.CoolestHour, Seed: 2,
	})
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	n := 50000
	dt := 3600.0
	noisy := g.Series(start, n, dt)
	clean := det.Series(start, n, dt)
	var sum, sumSq float64
	for i := range noisy {
		d := noisy[i] - clean[i]
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("noise mean = %v, want ≈0", mean)
	}
	if math.Abs(std-cfg.NoiseStdC) > 0.3 {
		t.Errorf("noise std = %v, want ≈%v", std, cfg.NoiseStdC)
	}
}

func TestReproducibility(t *testing.T) {
	start := time.Date(2024, 4, 7, 0, 0, 0, 0, time.UTC)
	a := NewGenerator(DefaultConfig()).Series(start, 100, 60)
	b := NewGenerator(DefaultConfig()).Series(start, 100, 60)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the series")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := NewGenerator(cfg).Series(start, 100, 60)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPhysicalRange(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	series := g.Series(start, 24*365, 3600)
	for i, v := range series {
		if v < -25 || v > 40 {
			t.Fatalf("sample %d = %v °C outside plausible wet-bulb range", i, v)
		}
	}
}

func TestConstant(t *testing.T) {
	s := Constant(21.5, 5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v != 21.5 {
			t.Fatal("Constant must be flat")
		}
	}
}
