#!/usr/bin/env sh
# Compare the two most recent BENCH_PR*.json series (or two explicit
# files) benchmark by benchmark: ns/op old vs new and the speedup ratio.
#
# Usage: scripts/bench_compare.sh [old.json new.json]
set -e

if [ $# -eq 2 ]; then
	old=$1
	new=$2
else
	# Sort numerically on the PR number: splitting "BENCH_PR4.json" on
	# "R" leaves "4.json" in field 2, which -n parses as 4 (so PR10
	# orders after PR9, not between PR1 and PR2).
	set -- $(ls BENCH_PR*.json 2>/dev/null | sort -t R -k 2 -n)
	[ $# -ge 2 ] || { echo "need at least two BENCH_PR*.json files" >&2; exit 1; }
	while [ $# -gt 2 ]; do shift; done
	old=$1
	new=$2
fi

echo "comparing $old -> $new" >&2
awk -v oldfile="$old" '
function parse(line) {
	# One benchmark object per line: pull "name" and "ns_per_op".
	if (match(line, /"name": *"[^"]+"/)) {
		name = substr(line, RSTART, RLENGTH)
		gsub(/"name": *"|"/, "", name)
		if (match(line, /"ns_per_op": *[0-9.e+]+/)) {
			ns = substr(line, RSTART, RLENGTH)
			gsub(/"ns_per_op": */, "", ns)
			return name SUBSEP ns
		}
	}
	return ""
}
BEGIN {
	while ((getline line < oldfile) > 0) {
		kv = parse(line)
		if (kv != "") { split(kv, a, SUBSEP); oldns[a[1]] = a[2] }
	}
	close(oldfile)
	printf("%-36s %14s %14s %9s\n", "benchmark", "old ms/op", "new ms/op", "speedup")
}
{
	kv = parse($0)
	if (kv == "") next
	split(kv, a, SUBSEP)
	name = a[1]; ns = a[2]
	seen[name] = 1
	if (name in oldns)
		printf("%-36s %14.2f %14.2f %8.2fx\n", name, oldns[name]/1e6, ns/1e6, oldns[name]/ns)
	else
		printf("%-36s %14s %14.2f %9s\n", name, "-", ns/1e6, "new")
}
END {
	for (name in oldns)
		if (!(name in seen))
			printf("%-36s %14.2f %14s %9s\n", name, oldns[name]/1e6, "-", "gone")
}
' "$new"
