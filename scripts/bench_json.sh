#!/usr/bin/env sh
# Run the headline benchmarks and emit them as a JSON array so the perf
# trajectory can be tracked PR over PR (BENCH_PR1.json onward). PR 6
# adds the durable-store restart path (BenchmarkSweepWarmRestart) with
# its disk-tier disk_scen/s rate; PR 7 adds the /metrics scrape cost
# under a saturated sweep (BenchmarkMetricsScrapeUnderLoad); PR 8 adds
# the distributed-sweep fabric (BenchmarkCoordinatorSweep) with its
# 1-vs-3-worker cold throughput, scaling ratio, and efficiency; PR 10
# adds the surrogate-accelerated co-design optimizer
# (BenchmarkOptimize) with its screening speedup, fallback share, and
# best-candidate divergence.
#
# Usage: scripts/bench_json.sh [output.json]
set -e
out=${1:-BENCH_PR10.json}

go test -run '^$' -bench 'TwinDay|TableIV|RunBatchDays|SweepService|SweepWarmRestart|CoolingVariantSweep|MidDayCancel|MetricsScrapeUnderLoad|CoordinatorSweep|Optimize$' -benchtime 1x . |
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = $3
		extra = ""
		# $4 is the "ns/op" unit; the extra ReportMetric fields follow as
		# "<value> <unit>" pairs.
		for (i = 5; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			gsub(/"/, "", unit)
			gsub(/\\/, "", unit)
			extra = extra sprintf(", \"%s\": %s", unit, $i)
		}
		if (n++) printf(",\n")
		printf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, $2, ns, extra)
	}
	BEGIN { printf("[\n") }
	END { printf("\n]\n") }
	' >"$out"

echo "wrote $out" >&2
