#!/usr/bin/env sh
# Lint the /metrics exposition of a fully wired server: boot the twin +
# sweep service + dashboard with every collector registered, run one
# synthetic scenario, scrape the registry, and hold the output to the
# strict text-format parser and the repo naming conventions (exadigit_
# prefix, _total/_seconds/_bytes suffixes). Any violation — a malformed
# sample, a non-monotone histogram, a counter without _total — fails the
# build. Wired into `make check`.
set -e
cd "$(dirname "$0")/.."
go run ./cmd/exadigit metrics-lint
