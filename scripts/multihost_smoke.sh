#!/usr/bin/env bash
# Two-process kill-restart smoke for the durable sweep journal: a worker
# and a coordinator run as separate serve processes sharing one -store
# directory; a keyed sweep is submitted to the coordinator, the
# coordinator is kill -9'd mid-sweep, and a restarted coordinator over
# the same directory must (a) resume the journaled sweep to completion
# with zero failures and recovered:true, and (b) dedupe a resubmission
# carrying the original Idempotency-Key back to the original sweep id.
# Wired into `make multihost-smoke` and CI's race job.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKER_PORT=${WORKER_PORT:-18081}
COORD_PORT=${COORD_PORT:-18080}
WORKER_URL="http://127.0.0.1:${WORKER_PORT}"
COORD_URL="http://127.0.0.1:${COORD_PORT}"
TMP=$(mktemp -d)
BIN="$TMP/exadigit"
WORKER_PID=""
COORD_PID=""

cleanup() {
  [ -n "$COORD_PID" ] && kill -9 "$COORD_PID" 2>/dev/null || true
  [ -n "$WORKER_PID" ] && kill -9 "$WORKER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- worker log ---" >&2; tail -30 "$TMP/worker.log" >&2 || true
  echo "--- coordinator log ---" >&2; tail -30 "$TMP/coord.log" >&2 || true
  exit 1
}

# json_field FILE KEY: first string value for "key":"value" (no jq in CI).
json_str() { sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" "$1" | head -1; }
json_num() { sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" "$1" | head -1; }

wait_ready() { # wait_ready URL NAME
  for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$1/api/sweeps" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  fail "$2 never became ready at $1"
}

echo "== building exadigit"
go build -o "$BIN" ./cmd/exadigit

echo "== starting worker on :$WORKER_PORT (shared store $TMP/store)"
"$BIN" serve -addr "127.0.0.1:${WORKER_PORT}" -store "$TMP/store" \
  -workers 1 -warm 0 -metrics-log-every 0 >"$TMP/worker.log" 2>&1 &
WORKER_PID=$!
disown "$WORKER_PID"
wait_ready "$WORKER_URL" worker

start_coordinator() {
  "$BIN" serve -addr "127.0.0.1:${COORD_PORT}" -store "$TMP/store" \
    -workers "$WORKER_URL" -warm 0 -metrics-log-every 0 >>"$TMP/coord.log" 2>&1 &
  COORD_PID=$!
  disown "$COORD_PID"
  wait_ready "$COORD_URL" coordinator
}

echo "== starting coordinator on :$COORD_PORT"
start_coordinator

# Day-long synthetic scenarios on a single-slot worker: slow enough that
# the kill below lands mid-sweep, fast enough to finish in seconds.
SUBMIT_BODY=$TMP/submit.json
{
  printf '{"name":"multihost-smoke","scenarios":['
  for i in $(seq 1 8); do
    [ "$i" -gt 1 ] && printf ','
    printf '{"workload":"synthetic","horizon_sec":86400,"tick_sec":15,"generator":{"seed":%d}}' "$i"
  done
  printf ']}'
} >"$SUBMIT_BODY"

echo "== submitting keyed 8-scenario sweep"
curl -fsS -X POST -H 'Idempotency-Key: multihost-smoke-key' \
  -H 'Content-Type: application/json' --data-binary @"$SUBMIT_BODY" \
  "$COORD_URL/api/sweeps" >"$TMP/ack1.json" || fail "submit refused"
SWEEP_ID=$(json_str "$TMP/ack1.json" id)
[ -n "$SWEEP_ID" ] || fail "no sweep id in $(cat "$TMP/ack1.json")"
echo "   sweep id: $SWEEP_ID"

echo "== waiting for the sweep to get under way, then kill -9 the coordinator"
STARTED=0
for _ in $(seq 1 200); do
  curl -fsS "$COORD_URL/api/sweeps/$SWEEP_ID" >"$TMP/status.json" 2>/dev/null || true
  DONE=$(json_num "$TMP/status.json" done); DONE=${DONE:-0}
  CACHED=$(json_num "$TMP/status.json" cached); CACHED=${CACHED:-0}
  if [ $((DONE + CACHED)) -ge 2 ] && [ $((DONE + CACHED)) -lt 8 ]; then STARTED=1; break; fi
  [ $((DONE + CACHED)) -ge 8 ] && break
  sleep 0.05
done
if [ "$STARTED" -ne 1 ]; then
  fail "never caught the sweep mid-flight (status: $(cat "$TMP/status.json" 2>/dev/null))"
fi
kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
echo "   killed coordinator $COORD_PID mid-sweep ($(cat "$TMP/status.json" | tr -d '\n' | cut -c1-120)...)"
COORD_PID=""

echo "== restarting coordinator over the same store"
start_coordinator

echo "== polling recovered sweep $SWEEP_ID to completion"
OK=0
for _ in $(seq 1 600); do
  if curl -fsS "$COORD_URL/api/sweeps/$SWEEP_ID" >"$TMP/status.json" 2>/dev/null; then
    FINISHED=$(grep -c '"finished":true' "$TMP/status.json" || true)
    if [ "$FINISHED" -ge 1 ]; then OK=1; break; fi
  fi
  sleep 0.1
done
[ "$OK" -eq 1 ] || fail "recovered sweep never finished (status: $(cat "$TMP/status.json" 2>/dev/null))"
grep -q '"recovered":true' "$TMP/status.json" || fail "finished sweep not marked recovered: $(cat "$TMP/status.json")"
DONE=$(json_num "$TMP/status.json" done); DONE=${DONE:-0}
CACHED=$(json_num "$TMP/status.json" cached); CACHED=${CACHED:-0}
TOTAL=$(json_num "$TMP/status.json" total)
[ "$TOTAL" = "8" ] || fail "total=$TOTAL, want 8"
[ $((DONE + CACHED)) -eq 8 ] || fail "done+cached=$((DONE + CACHED)), want 8"
if grep -q '"failed":[1-9]' "$TMP/status.json"; then fail "recovered sweep has failures: $(cat "$TMP/status.json")"; fi
echo "   recovered sweep finished: done=$DONE cached=$CACHED"

echo "== resubmitting with the original Idempotency-Key"
HTTP_CODE=$(curl -sS -o "$TMP/ack2.json" -w '%{http_code}' -X POST \
  -H 'Idempotency-Key: multihost-smoke-key' -H 'Content-Type: application/json' \
  --data-binary @"$SUBMIT_BODY" "$COORD_URL/api/sweeps")
[ "$HTTP_CODE" = "200" ] || fail "resubmission returned HTTP $HTTP_CODE, want 200 (body: $(cat "$TMP/ack2.json"))"
DUP_ID=$(json_str "$TMP/ack2.json" id)
[ "$DUP_ID" = "$SWEEP_ID" ] || fail "resubmission minted new sweep $DUP_ID, want $SWEEP_ID"
grep -q '"deduplicated":true' "$TMP/ack2.json" || fail "resubmission not marked deduplicated: $(cat "$TMP/ack2.json")"
echo "   deduplicated to original id $DUP_ID"

echo "PASS: multihost kill-restart smoke (sweep $SWEEP_ID survived coordinator kill -9)"
